// Differential tests for the bytecode compilation layer (PR 2): the
// compiled VM must be bit-identical to the tree-walking interpreter —
// per-cycle engine state on handwritten edge-case circuits, random
// expression trees, and whole fault campaigns on every suite benchmark
// across all three RedundancyModes and multiple shard counts.
// This suite deliberately exercises the deprecated pre-Session free
// functions as compatibility coverage for the Session wrappers.
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "eraser/campaign.h"
#include "fault/fault.h"
#include "frontend/compile.h"
#include "rtl/expr.h"
#include "sim/bcvm.h"
#include "sim/bytecode.h"
#include "sim/engine.h"
#include "sim/interp.h"
#include "suite/random_stimulus.h"
#include "suite/suite.h"
#include "util/prng.h"

namespace eraser {
namespace {

using core::RedundancyMode;
using sim::InterpMode;
using sim::SimEngine;

// ---------------------------------------------------------------------------
// Engine-level differential on handwritten circuits exercising the compiler
// edge cases: partial writes, dynamic bit writes, array writes (incl.
// out-of-range), case with/without default (incl. empty default), >32-bit
// constants, and blocking/NBA mixes.

/// Drives both engines with the same deterministic input sequence and
/// checks every signal and array element after every cycle.
void check_engines_agree(const char* source, const char* top,
                         int cycles = 40) {
    auto design = frontend::compile(source, top);
    SimEngine tree(*design, sim::SchedulingMode::EventDriven,
                   InterpMode::Tree);
    SimEngine bc(*design, sim::SchedulingMode::EventDriven,
                 InterpMode::Bytecode);
    tree.reset();
    bc.reset();
    const auto clk = design->signal_id("clk");
    Prng rng(2025);

    auto check_state = [&](int cycle) {
        for (rtl::SignalId s = 0; s < design->signals.size(); ++s) {
            ASSERT_EQ(tree.peek(s), bc.peek(s))
                << "signal " << design->signals[s].name << " cycle "
                << cycle;
        }
        for (rtl::ArrayId a = 0; a < design->arrays.size(); ++a) {
            for (uint32_t i = 0; i < design->arrays[a].size; ++i) {
                ASSERT_EQ(tree.peek_array(a, i), bc.peek_array(a, i))
                    << "array " << design->arrays[a].name << "[" << i
                    << "] cycle " << cycle;
            }
        }
    };
    check_state(-1);
    for (int c = 0; c < cycles; ++c) {
        for (rtl::SignalId in : design->inputs) {
            if (in == clk) continue;
            const uint64_t v = rng.bits(design->signals[in].width);
            tree.poke(in, v);
            bc.poke(in, v);
        }
        tree.tick(clk);
        bc.tick(clk);
        check_state(c);
    }
}

TEST(BytecodeEquiv, PartialAndBitSelectWrites) {
    check_engines_agree(R"(
        module top(input clk, input [7:0] d, input [2:0] idx,
                   input bit_v, output reg [7:0] q, output reg [7:0] r);
          reg [7:0] t;
          always @(posedge clk) begin
            q[3:0] <= d[7:4];
            q[7:4] <= d[3:0];
            r[idx] <= bit_v;
          end
          always @(*) begin
            t = 8'h00;
            t[1:0] = d[1:0];
            t[idx] = bit_v;
          end
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, DynamicBitWriteOutOfRange) {
    // idx can exceed the 6-bit target width: out-of-range writes no-op.
    check_engines_agree(R"(
        module top(input clk, input [3:0] idx, input v,
                   output reg [5:0] q);
          always @(posedge clk) q[idx] <= v;
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, ArrayWritesAndOutOfRangeIndex) {
    // mem has 5 elements; addr spans 0..7, so reads/writes go out of range.
    check_engines_agree(R"(
        module top(input clk, input [2:0] addr, input [7:0] d,
                   input we, output reg [7:0] q);
          reg [7:0] mem [0:4];
          always @(posedge clk) begin
            if (we) mem[addr] <= d;
            q <= mem[addr];
          end
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, CaseWithEmptyDefaultAndNoMatch) {
    check_engines_agree(R"(
        module top(input clk, input [2:0] s, input [7:0] d,
                   output reg [7:0] q, output reg [7:0] r);
          always @(posedge clk) begin
            case (s)
              3'd0: q <= d;
              3'd1, 3'd2: q <= ~d;
              default: ;
            endcase
            case (s)
              3'd3: r <= d + 8'd1;
              3'd4: r <= d - 8'd1;
            endcase
          end
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, WideConstantsAndArithmetic) {
    // >32-bit constants must survive the constant pool bit-exactly.
    check_engines_agree(R"(
        module top(input clk, input [47:0] a, output reg [47:0] y,
                   output reg [63:0] z);
          always @(posedge clk) begin
            y <= a ^ 48'hBEEF_CAFE_F00D;
            z <= {16'h1234, a} + 64'h0123_4567_89AB_CDEF;
          end
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, BlockingChainsThroughComb) {
    // Read-after-write chains exercise the VM's slot fast path.
    check_engines_agree(R"(
        module top(input clk, input [7:0] a, input [7:0] b,
                   output reg [7:0] y);
          reg [7:0] t1, t2, t3;
          always @(*) begin
            t1 = a + b;
            t2 = t1 ^ a;
            t3 = t2 + t1;
            if (t3[0]) t3 = t3 + 8'd3;
          end
          always @(posedge clk) y <= t3;
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, MixedBlockingAndPartialNbaOnOneReg) {
    // Blocking write followed by partial NBA writes of the same register:
    // the NBA read-modify-write must see pending NBA values, and slotting
    // must not hide the blocking value.
    check_engines_agree(R"(
        module top(input clk, input [7:0] d, output reg [7:0] q);
          always @(posedge clk) begin
            q[3:0] <= d[3:0];
            q[7:4] <= d[7:4];
          end
        endmodule)",
                        "top");
}

TEST(BytecodeEquiv, AuditSoundnessCleanUnderBytecode) {
    // Regression: mixed slotted/NBA-excluded blocking writes make the fused
    // walk's per-segment programs and the whole-body shadow program record
    // blocking writes in different insertion orders. The audit's activation
    // comparison must be order-insensitive, or it reports spurious
    // soundness violations under Bytecode.
    auto design = frontend::compile(R"(
        module top(input clk, input [7:0] d, input [7:0] e, input c,
                   input b, output reg [7:0] y, output reg [7:0] t);
          reg [7:0] x;
          always @(posedge clk) begin
            x = e + 8'd1;
            y = x + d;
            if (c) t = x;
            y[0] <= b;
          end
        endmodule)",
                                    "top");
    fault::FaultGenOptions fopts;
    fopts.sample_max = 64;
    const auto faults = fault::generate_faults(*design, fopts);
    ASSERT_FALSE(faults.empty());

    auto run = [&](InterpMode interp) {
        suite::RandomStimulus::Config cfg;
        cfg.cycles = 50;
        cfg.seed = 7;
        suite::RandomStimulus stim(cfg);
        core::CampaignOptions opts;
        opts.engine.interp = interp;
        opts.engine.audit = true;
        return core::run_concurrent_campaign(*design, faults, stim, opts);
    };
    const auto tree = run(InterpMode::Tree);
    const auto bc = run(InterpMode::Bytecode);
    EXPECT_EQ(tree.detected, bc.detected);
    EXPECT_EQ(tree.stats.audit_soundness_violations, 0u);
    EXPECT_EQ(bc.stats.audit_soundness_violations, 0u);
}

// ---------------------------------------------------------------------------
// Expression-level fuzz: random trees, compile_expr vs eval_expr.

class VecCtx final : public sim::EvalContext {
  public:
    explicit VecCtx(std::vector<Value> vals) : vals_(std::move(vals)) {}
    Value read_signal(rtl::SignalId s) override { return vals_[s]; }
    Value read_array(rtl::ArrayId, uint64_t) override { return Value(0, 8); }
    void write_signal(rtl::SignalId, Value, bool) override {}
    void write_array(rtl::ArrayId, uint64_t, Value, bool) override {}

  private:
    std::vector<Value> vals_;
};

rtl::ExprPtr random_expr(Prng& rng, int depth, unsigned num_leaves) {
    using rtl::Expr;
    using rtl::ExprPtr;
    using rtl::Op;
    if (depth <= 0 || rng.chance(1, 3)) {
        if (rng.chance(1, 4)) {
            const unsigned w = 1 + static_cast<unsigned>(rng.below(64));
            return Expr::make_const(Value(rng.bits(w), w));
        }
        const auto sig = static_cast<rtl::SignalId>(rng.below(num_leaves));
        return Expr::make_signal(sig, 16);
    }
    static const Op kBin[] = {Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Mod,
                              Op::And, Op::Or,  Op::Xor, Op::Shl, Op::Shr,
                              Op::Eq,  Op::Ne,  Op::Lt,  Op::Le,  Op::Gt,
                              Op::Ge};
    switch (rng.below(4)) {
        case 0: {
            const Op op = kBin[rng.below(std::size(kBin))];
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            ExprPtr b = random_expr(rng, depth - 1, num_leaves);
            const unsigned w = std::max(a->width, b->width);
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            args.push_back(std::move(b));
            return Expr::make_op(op, std::move(args),
                                 rtl::op_arity(op) == 2 && w > 0 ? w : 1);
        }
        case 1: {
            ExprPtr sel = random_expr(rng, depth - 1, num_leaves);
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            ExprPtr b = random_expr(rng, depth - 1, num_leaves);
            const unsigned w = std::max(a->width, b->width);
            std::vector<ExprPtr> args;
            args.push_back(std::move(sel));
            args.push_back(std::move(a));
            args.push_back(std::move(b));
            return Expr::make_op(rtl::Op::Mux, std::move(args), w);
        }
        case 2: {
            static const Op kUn[] = {Op::Not, Op::Neg, Op::LNot, Op::RedAnd,
                                     Op::RedOr, Op::RedXor};
            const Op op = kUn[rng.below(std::size(kUn))];
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            const unsigned w =
                (op == Op::Not || op == Op::Neg) ? a->width : 1;
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            return Expr::make_op(op, std::move(args), w);
        }
        default: {
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            const unsigned aw = a->width;
            const unsigned lo = static_cast<unsigned>(rng.below(aw));
            const unsigned w = 1 + static_cast<unsigned>(rng.below(aw - lo));
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            return Expr::make_op(rtl::Op::Slice, std::move(args), w, lo);
        }
    }
}

TEST(BytecodeEquiv, RandomExpressionsMatchTreeInterpreter) {
    rtl::Design dummy;   // BcVm only needs arrays for StoreArray bounds
    dummy.finalize();
    sim::BcVm vm(dummy);
    Prng rng(77);
    constexpr unsigned kLeaves = 5;
    for (int tree = 0; tree < 200; ++tree) {
        const rtl::ExprPtr e = random_expr(rng, 5, kLeaves);
        const sim::BcProgram prog = sim::compile_expr(*e);
        for (int vec = 0; vec < 10; ++vec) {
            std::vector<Value> leaves;
            for (unsigned i = 0; i < kLeaves; ++i) {
                leaves.emplace_back(rng.bits(16), 16);
            }
            VecCtx ctx1(leaves);
            VecCtx ctx2(leaves);
            const Value want = sim::eval_expr(*e, ctx1);
            const Value got = vm.eval(prog, ctx2);
            ASSERT_EQ(want, got) << "tree " << tree << " vec " << vec;
        }
    }
}

// ---------------------------------------------------------------------------
// Campaign-level differential over the whole benchmark suite: detection
// bitmaps must be bit-identical between Tree and Bytecode for every
// RedundancyMode, and for the sharded scheduler at several shard counts.

class SuiteBytecodeEquiv : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteBytecodeEquiv,
    ::testing::Range<size_t>(0, suite::registry().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
        return suite::registry()[info.param].name;
    });

TEST_P(SuiteBytecodeEquiv, DetectionBitmapsMatchTreeInterpreter) {
    const auto& b = suite::registry()[GetParam()];
    auto design = suite::load_design(b);
    fault::FaultGenOptions fopts;
    fopts.sample_max = 60;
    fopts.sample_seed = 20250423;
    const auto faults = fault::generate_faults(*design, fopts);
    const uint32_t cycles = b.test_cycles;

    for (const RedundancyMode mode :
         {RedundancyMode::None, RedundancyMode::Explicit,
          RedundancyMode::Full}) {
        core::CampaignOptions tree_opts;
        tree_opts.engine.mode = mode;
        tree_opts.engine.interp = InterpMode::Tree;
        auto tree_stim = suite::make_stimulus(b, cycles);
        const auto tree = core::run_concurrent_campaign(*design, faults,
                                                        *tree_stim,
                                                        tree_opts);

        core::CampaignOptions bc_opts;
        bc_opts.engine.mode = mode;
        bc_opts.engine.interp = InterpMode::Bytecode;
        auto bc_stim = suite::make_stimulus(b, cycles);
        const auto bc = core::run_concurrent_campaign(*design, faults,
                                                      *bc_stim, bc_opts);

        ASSERT_EQ(tree.detected, bc.detected)
            << b.name << " mode " << static_cast<int>(mode);

        // Sharded bytecode campaigns at several shard counts must match
        // the tree verdicts too.
        for (const uint32_t shards : {2u, 5u}) {
            core::CampaignOptions sh_opts = bc_opts;
            sh_opts.num_threads = 2;
            sh_opts.num_shards = shards;
            const auto sharded = core::run_sharded_campaign(
                *design, faults,
                [&] { return suite::make_stimulus(b, cycles); }, sh_opts);
            ASSERT_EQ(tree.detected, sharded.detected)
                << b.name << " mode " << static_cast<int>(mode) << " shards "
                << shards;
        }
    }
}

TEST_P(SuiteBytecodeEquiv, SerialBaselineMatchesTreeInterpreter) {
    const auto& b = suite::registry()[GetParam()];
    auto design = suite::load_design(b);
    fault::FaultGenOptions fopts;
    fopts.sample_max = 25;
    fopts.sample_seed = 20250423;
    const auto faults = fault::generate_faults(*design, fopts);
    const uint32_t cycles = b.test_cycles / 2;

    for (const auto sched : {sim::SchedulingMode::EventDriven,
                             sim::SchedulingMode::Levelized}) {
        baseline::SerialOptions tree_opts;
        tree_opts.mode = sched;
        tree_opts.interp = InterpMode::Tree;
        auto tree_stim = suite::make_stimulus(b, cycles);
        const auto tree = baseline::run_serial_campaign(*design, faults,
                                                        *tree_stim,
                                                        tree_opts);

        baseline::SerialOptions bc_opts = tree_opts;
        bc_opts.interp = InterpMode::Bytecode;
        auto bc_stim = suite::make_stimulus(b, cycles);
        const auto bc = baseline::run_serial_campaign(*design, faults,
                                                      *bc_stim, bc_opts);
        ASSERT_EQ(tree.detected, bc.detected)
            << b.name << " sched " << static_cast<int>(sched);
    }
}

}  // namespace
}  // namespace eraser
