// The sharded campaign scheduler's determinism contract: for every suite
// benchmark, every shard count, every policy, and every thread count, the
// detection bitmap is bit-identical to the single-engine campaign, and the
// fault-attributed redundancy counters merge to exactly the unsharded
// values in every redundancy mode.
// This suite deliberately exercises the deprecated pre-Session free
// functions as compatibility coverage for the Session wrappers.
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include <memory>

#include "eraser/campaign.h"
#include "eraser/compiled_design.h"
#include "eraser/shard.h"
#include "suite/suite.h"

namespace eraser {
namespace {

std::vector<fault::Fault> ci_faults(const rtl::Design& design) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = 60;
    fopts.sample_seed = 42;
    return fault::generate_faults(design, fopts);
}

class ShardCampaign : public ::testing::TestWithParam<suite::Benchmark> {};

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ShardCampaign,
                         ::testing::ValuesIn(suite::registry()),
                         [](const auto& info) { return info.param.name; });

// (a) serial vs K-shard campaigns produce identical detection bitmaps and
// coverage for K in {1, 2, 4, 7}, under both policies.
TEST_P(ShardCampaign, DetectionBitmapsAreShardCountInvariant) {
    const suite::Benchmark& b = GetParam();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    ASSERT_FALSE(faults.empty());

    auto serial_stim = suite::make_stimulus(b, b.test_cycles);
    core::CampaignOptions serial_opts;
    const auto serial = core::run_concurrent_campaign(*design, faults,
                                                      *serial_stim,
                                                      serial_opts);

    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };
    for (const auto policy :
         {core::ShardPolicy::RoundRobin, core::ShardPolicy::CostBalanced}) {
        for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
            core::CampaignOptions opts;
            opts.num_shards = shards;
            opts.num_threads = shards;   // exercise the thread pool too
            opts.shard_policy = policy;
            const auto got =
                core::run_sharded_campaign(*design, faults, factory, opts);
            EXPECT_EQ(got.detected, serial.detected)
                << b.name << " K=" << shards
                << " policy=" << static_cast<int>(policy);
            EXPECT_EQ(got.num_detected, serial.num_detected) << b.name;
            EXPECT_DOUBLE_EQ(got.coverage_percent, serial.coverage_percent)
                << b.name;
            EXPECT_EQ(got.num_faults, serial.num_faults) << b.name;
        }
    }
}

// (b) the seed's redundancy-counter contract survives the shard merge, in
// every redundancy mode: for a fixed partition, the merged candidate
// population is mode-invariant, every merged candidate is accounted for as
// executed-or-skipped exactly once, and every mode detects the same faults
// as the unsharded campaign. (Raw candidate totals are *per-evaluation*
// accounting and legitimately differ between partitions: a comb behavior
// re-evaluated because of one fault's divergence traffic re-counts its
// co-resident candidates, so only the invariants — not the absolute
// totals — are partition-independent.)
TEST_P(ShardCampaign, RedundancyCountersMergeConsistently) {
    const suite::Benchmark& b = GetParam();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);

    auto factory = [&] {
        return suite::make_stimulus(b, b.test_cycles / 2);
    };

    auto stim = suite::make_stimulus(b, b.test_cycles / 2);
    core::CampaignOptions serial_opts;
    const auto serial = core::run_concurrent_campaign(*design, faults, *stim,
                                                      serial_opts);

    uint64_t candidates[3] = {};
    int i = 0;
    for (const auto mode :
         {core::RedundancyMode::None, core::RedundancyMode::Explicit,
          core::RedundancyMode::Full}) {
        core::CampaignOptions opts;
        opts.engine.mode = mode;
        opts.num_shards = 4;
        opts.num_threads = 2;
        const auto sharded =
            core::run_sharded_campaign(*design, faults, factory, opts);

        // Merged skip/execute counters cover the merged candidates exactly.
        EXPECT_EQ(sharded.stats.bn_executed +
                      sharded.stats.bn_skipped_explicit +
                      sharded.stats.bn_skipped_implicit,
                  sharded.stats.bn_candidates)
            << b.name << " mode=" << static_cast<int>(mode);
        // Skips only exist in the modes that enable them.
        if (mode == core::RedundancyMode::None) {
            EXPECT_EQ(sharded.stats.bn_skipped_explicit, 0u) << b.name;
            EXPECT_EQ(sharded.stats.bn_skipped_implicit, 0u) << b.name;
        }
        if (mode == core::RedundancyMode::Explicit) {
            EXPECT_EQ(sharded.stats.bn_skipped_implicit, 0u) << b.name;
        }
        // Redundancy elimination never changes verdicts.
        EXPECT_EQ(sharded.detected, serial.detected)
            << b.name << " mode=" << static_cast<int>(mode);
        // The requested partition was actually used.
        EXPECT_EQ(sharded.num_shards, 4u) << b.name;
        candidates[i++] = sharded.stats.bn_candidates;
    }
    // The candidate population of a fixed partition is mode-independent.
    EXPECT_EQ(candidates[0], candidates[1]) << b.name;
    EXPECT_EQ(candidates[1], candidates[2]) << b.name;
}

// Shard construction invariants: exact cover, ascending global ids, no
// empty shards, deterministic assignment.
TEST(ShardPartition, CoversEveryFaultExactlyOnce) {
    const auto& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);

    for (const auto policy :
         {core::ShardPolicy::RoundRobin, core::ShardPolicy::CostBalanced}) {
        for (const uint32_t k : {1u, 3u, 7u, 1000u}) {
            const auto shards =
                core::make_shards(*design, faults, k, policy);
            std::vector<uint32_t> seen(faults.size(), 0);
            for (const auto& shard : shards) {
                ASSERT_EQ(shard.faults.size(), shard.global_ids.size());
                EXPECT_FALSE(shard.faults.empty());
                for (size_t i = 0; i < shard.global_ids.size(); ++i) {
                    if (i > 0) {
                        EXPECT_LT(shard.global_ids[i - 1],
                                  shard.global_ids[i]);
                    }
                    ASSERT_LT(shard.global_ids[i], faults.size());
                    ++seen[shard.global_ids[i]];
                    EXPECT_EQ(shard.faults[i].sig,
                              faults[shard.global_ids[i]].sig);
                }
            }
            for (uint32_t count : seen) EXPECT_EQ(count, 1u);
            EXPECT_LE(shards.size(), std::max<size_t>(1, faults.size()));

            // Determinism: same inputs, same partition.
            const auto again =
                core::make_shards(*design, faults, k, policy);
            ASSERT_EQ(again.size(), shards.size());
            for (size_t s = 0; s < shards.size(); ++s) {
                EXPECT_EQ(again[s].global_ids, shards[s].global_ids);
                EXPECT_EQ(again[s].est_cost, shards[s].est_cost);
            }
        }
    }
}

TEST(ShardPartition, GroupedCoversEveryFaultAndAlignsToLanes) {
    const auto& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);

    for (const auto policy :
         {core::ShardPolicy::RoundRobin, core::ShardPolicy::CostBalanced}) {
        for (const uint32_t k : {1u, 3u, 7u, 1000u}) {
            const auto shards =
                core::make_shards_grouped(*compiled, faults, k, policy);
            std::vector<uint32_t> seen(faults.size(), 0);
            for (const auto& shard : shards) {
                ASSERT_EQ(shard.faults.size(), shard.global_ids.size());
                EXPECT_FALSE(shard.faults.empty());
                for (size_t i = 0; i < shard.global_ids.size(); ++i) {
                    if (i > 0) {
                        EXPECT_LT(shard.global_ids[i - 1],
                                  shard.global_ids[i]);
                    }
                    ASSERT_LT(shard.global_ids[i], faults.size());
                    ++seen[shard.global_ids[i]];
                }
            }
            for (uint32_t count : seen) EXPECT_EQ(count, 1u);

            // Determinism: same inputs, same partition.
            const auto again =
                core::make_shards_grouped(*compiled, faults, k, policy);
            ASSERT_EQ(again.size(), shards.size());
            for (size_t s = 0; s < shards.size(); ++s) {
                EXPECT_EQ(again[s].global_ids, shards[s].global_ids);
            }
        }
        // At shard counts below the group count, every shard's size is a
        // whole number of 64-lane units except at most one partial unit
        // overall (lane-aligned work per shard). Needs > 64 * k faults.
        fault::FaultGenOptions fopts;
        fopts.sample_max = 200;
        fopts.sample_seed = 5;
        const auto many = fault::generate_faults(*design, fopts);
        ASSERT_GT(many.size(), 128u);
        const auto shards =
            core::make_shards_grouped(*compiled, many, 2, policy);
        uint32_t partials = 0;
        for (const auto& shard : shards) {
            partials += shard.faults.size() % 64 != 0;
        }
        EXPECT_LE(partials, 1u) << "policy "
                                << static_cast<int>(policy);
    }
}

TEST(ShardPartition, CostBalancedSpreadsLoad) {
    const auto& b = suite::find_benchmark("sha256_hv");
    auto design = suite::load_design(b);
    fault::FaultGenOptions fopts;
    fopts.sample_max = 200;
    fopts.sample_seed = 9;
    const auto faults = fault::generate_faults(*design, fopts);

    const auto costs = core::estimate_fault_costs(*design, faults);
    ASSERT_EQ(costs.size(), faults.size());
    for (uint64_t c : costs) EXPECT_GE(c, 1u);

    const auto shards = core::make_shards(*design, faults, 4,
                                          core::ShardPolicy::CostBalanced);
    ASSERT_EQ(shards.size(), 4u);
    uint64_t min_cost = UINT64_MAX, max_cost = 0;
    for (const auto& s : shards) {
        min_cost = std::min(min_cost, s.est_cost);
        max_cost = std::max(max_cost, s.est_cost);
    }
    // LPT keeps the spread tight: the heaviest shard stays within 2x of the
    // lightest (loose bound; typical spread is a few percent).
    EXPECT_LE(max_cost, 2 * min_cost);
}

// An empty fault list still produces a well-formed (empty) result.
TEST(ShardCampaignEdge, EmptyFaultList) {
    const auto& b = suite::registry().front();
    auto design = suite::load_design(b);
    std::vector<fault::Fault> none;
    auto factory = [&] { return suite::make_stimulus(b, 50); };
    core::CampaignOptions opts;
    opts.num_threads = 2;
    const auto r = core::run_sharded_campaign(*design, none, factory, opts);
    EXPECT_EQ(r.num_faults, 0u);
    EXPECT_EQ(r.num_detected, 0u);
    EXPECT_TRUE(r.detected.empty());
}

}  // namespace
}  // namespace eraser
