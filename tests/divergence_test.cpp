// Unit tests for the DivergenceList (the concurrent engine's hot structure)
// and the Prng / fault-model helpers.
#include <gtest/gtest.h>

#include "fault/divergence.h"
#include "util/prng.h"

namespace eraser::fault {
namespace {

TEST(DivergenceList, SetFindErase) {
    DivergenceList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.find(3), nullptr);

    EXPECT_TRUE(list.set(3, Value(7, 8)));
    EXPECT_TRUE(list.set(1, Value(5, 8)));
    EXPECT_TRUE(list.set(9, Value(1, 8)));
    EXPECT_EQ(list.size(), 3u);

    ASSERT_NE(list.find(3), nullptr);
    EXPECT_EQ(list.find(3)->bits(), 7u);
    EXPECT_TRUE(list.contains(1));
    EXPECT_FALSE(list.contains(2));

    //

    EXPECT_FALSE(list.set(3, Value(7, 8)));   // unchanged -> false
    EXPECT_TRUE(list.set(3, Value(8, 8)));    // changed -> true
    EXPECT_EQ(list.find(3)->bits(), 8u);

    EXPECT_TRUE(list.erase(1));
    EXPECT_FALSE(list.erase(1));
    EXPECT_EQ(list.size(), 2u);
}

TEST(DivergenceList, KeepsSortedOrder) {
    DivergenceList list;
    for (FaultId f : {9u, 2u, 7u, 0u, 5u}) list.set(f, Value(f, 8));
    FaultId prev = 0;
    bool first = true;
    for (const auto& e : list.entries()) {
        if (!first) EXPECT_LT(prev, e.fault);
        prev = e.fault;
        first = false;
    }
}

TEST(DivergenceList, EraseIfDropsPredicateMatches) {
    DivergenceList list;
    for (FaultId f = 0; f < 10; ++f) list.set(f, Value(f, 8));
    list.erase_if([](FaultId f) { return f % 2 == 0; });
    EXPECT_EQ(list.size(), 5u);
    for (const auto& e : list.entries()) EXPECT_EQ(e.fault % 2, 1u);
}

TEST(DivergenceList, WidthIsPartOfTheValue) {
    DivergenceList list;
    list.set(1, Value(3, 4));
    EXPECT_TRUE(list.set(1, Value(3, 5)));   // same bits, new width: changed
}

TEST(Prng, DeterministicAcrossInstances) {
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Prng, BitsRespectsWidth) {
    Prng rng(7);
    for (unsigned w = 1; w <= 64; ++w) {
        const uint64_t v = rng.bits(w);
        if (w < 64) EXPECT_LT(v, uint64_t{1} << w) << "width " << w;
    }
    EXPECT_EQ(rng.bits(0), 0u);
}

TEST(Prng, BelowStaysInRange) {
    Prng rng(3);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
}

}  // namespace
}  // namespace eraser::fault
