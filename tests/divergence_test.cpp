// Unit tests for the DivergenceList (the concurrent engine's hot structure)
// and the Prng / fault-model helpers.
#include <gtest/gtest.h>

#include "fault/divergence.h"
#include "util/prng.h"

namespace eraser::fault {
namespace {

TEST(DivergenceList, SetFindErase) {
    DivergenceList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.find(3), nullptr);

    EXPECT_TRUE(list.set(3, Value(7, 8)));
    EXPECT_TRUE(list.set(1, Value(5, 8)));
    EXPECT_TRUE(list.set(9, Value(1, 8)));
    EXPECT_EQ(list.size(), 3u);

    ASSERT_NE(list.find(3), nullptr);
    EXPECT_EQ(list.find(3)->bits(), 7u);
    EXPECT_TRUE(list.contains(1));
    EXPECT_FALSE(list.contains(2));

    //

    EXPECT_FALSE(list.set(3, Value(7, 8)));   // unchanged -> false
    EXPECT_TRUE(list.set(3, Value(8, 8)));    // changed -> true
    EXPECT_EQ(list.find(3)->bits(), 8u);

    EXPECT_TRUE(list.erase(1));
    EXPECT_FALSE(list.erase(1));
    EXPECT_EQ(list.size(), 2u);
}

TEST(DivergenceList, KeepsSortedOrder) {
    DivergenceList list;
    for (FaultId f : {9u, 2u, 7u, 0u, 5u}) list.set(f, Value(f, 8));
    FaultId prev = 0;
    bool first = true;
    for (const auto& e : list.entries()) {
        if (!first) EXPECT_LT(prev, e.fault);
        prev = e.fault;
        first = false;
    }
}

TEST(DivergenceList, EraseIfDropsPredicateMatches) {
    DivergenceList list;
    for (FaultId f = 0; f < 10; ++f) list.set(f, Value(f, 8));
    list.erase_if([](FaultId f) { return f % 2 == 0; });
    EXPECT_EQ(list.size(), 5u);
    for (const auto& e : list.entries()) EXPECT_EQ(e.fault % 2, 1u);
}

TEST(DivergenceList, MergeFromMatchesSetEraseLoop) {
    // merge_from(updates, good) must leave the list exactly as the
    // equivalent per-update set/erase loop would, across random batches.
    Prng rng(11);
    const Value good(0, 16);
    for (int round = 0; round < 200; ++round) {
        DivergenceList merged, looped;
        // Random pre-state shared by both.
        for (int i = 0; i < 12; ++i) {
            const FaultId f = static_cast<FaultId>(rng.below(48));
            const Value v(rng.bits(16), 16);
            merged.set(f, v);
            looped.set(f, v);
        }
        // Random update batch: ascending unique faults, ~half equal good.
        std::vector<DivergenceList::Entry> updates;
        for (FaultId f = 0; f < 48; ++f) {
            if (rng.below(3) == 0) {
                updates.push_back(
                    {f, rng.below(2) == 0 ? good : Value(rng.bits(16), 16)});
            }
        }
        std::vector<DivergenceList::Entry> scratch;
        const bool changed = merged.merge_from(updates, good, scratch);
        bool loop_changed = false;
        for (const auto& u : updates) {
            if (u.value != good) {
                loop_changed |= looped.set(u.fault, u.value);
            } else {
                loop_changed |= looped.erase(u.fault);
            }
        }
        EXPECT_EQ(merged, looped) << "round " << round;
        EXPECT_EQ(changed, loop_changed) << "round " << round;
    }
}

TEST(DivergenceBlockStore, SetFindEraseMirrorsList) {
    DivergenceBlockStore store;
    store.reset(2);
    EXPECT_TRUE(store.empty());
    EXPECT_EQ(store.find(1, 3), nullptr);

    EXPECT_TRUE(store.set(1, 3, 7));
    EXPECT_TRUE(store.set(0, 63, 5));
    EXPECT_FALSE(store.empty());
    EXPECT_EQ(store.live_groups(), 2u);

    ASSERT_NE(store.find(1, 3), nullptr);
    EXPECT_EQ(*store.find(1, 3), 7u);
    EXPECT_TRUE(store.contains(0, 63));
    EXPECT_FALSE(store.contains(0, 62));
    EXPECT_EQ(store.mask(0), uint64_t{1} << 63);

    EXPECT_FALSE(store.set(1, 3, 7));   // unchanged -> false
    EXPECT_TRUE(store.set(1, 3, 8));    // changed -> true
    EXPECT_EQ(store.value(1, 3), 8u);

    EXPECT_TRUE(store.erase(0, 63));
    EXPECT_FALSE(store.erase(0, 63));
    EXPECT_EQ(store.live_groups(), 1u);

    store.erase_lanes(1, ~uint64_t{0});
    EXPECT_TRUE(store.empty());
}

TEST(DivergenceBlockStore, CopyAndCompareGroups) {
    DivergenceBlockStore a, b;
    a.reset(1);
    b.reset(1);
    EXPECT_TRUE(a.group_equals(b, 0));
    a.set(0, 5, 42);
    a.set(0, 17, 9);
    EXPECT_FALSE(a.group_equals(b, 0));
    b.copy_group_from(a, 0);
    EXPECT_TRUE(a.group_equals(b, 0));
    EXPECT_EQ(b.value(0, 5), 42u);
    // Same mask, different value.
    b.set(0, 5, 43);
    EXPECT_FALSE(a.group_equals(b, 0));
    // Copying an empty group clears the destination.
    DivergenceBlockStore empty;
    empty.reset(1);
    b.copy_group_from(empty, 0);
    EXPECT_TRUE(b.empty());
}

TEST(LaneAddressing, GroupAndLaneRoundTrip) {
    for (const FaultId f : {0u, 1u, 63u, 64u, 65u, 200u, 4095u}) {
        EXPECT_EQ((group_of(f) << kLaneBits) | lane_of(f), f);
    }
    EXPECT_EQ(num_groups(0), 0u);
    EXPECT_EQ(num_groups(1), 1u);
    EXPECT_EQ(num_groups(64), 1u);
    EXPECT_EQ(num_groups(65), 2u);
}

TEST(DivergenceList, WidthIsPartOfTheValue) {
    DivergenceList list;
    list.set(1, Value(3, 4));
    EXPECT_TRUE(list.set(1, Value(3, 5)));   // same bits, new width: changed
}

TEST(Prng, DeterministicAcrossInstances) {
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Prng, BitsRespectsWidth) {
    Prng rng(7);
    for (unsigned w = 1; w <= 64; ++w) {
        const uint64_t v = rng.bits(w);
        if (w < 64) EXPECT_LT(v, uint64_t{1} << w) << "width " << w;
    }
    EXPECT_EQ(rng.bits(0), 0u);
}

TEST(Prng, BelowStaysInRange) {
    Prng rng(3);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
}

}  // namespace
}  // namespace eraser::fault
