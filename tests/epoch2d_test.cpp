// Two-dimensional (fault, epoch) parallelism contract (ctest label "2d"):
//
//  * EpochWindowStimulus maps window-local cycles/epochs onto the inner
//    stimulus exactly (geometry is the whole adapter);
//  * packing (fault, epoch) units is bit-identical to the serial epoch
//    loop — across suite circuits, Word/Off batching, odd fault-count ×
//    epoch-count remainders, forced and auto splits, and thread counts;
//  * stimulus pipelining is verdict-neutral (it replays the recorded
//    drive calls in call order; only the overlap moves);
//  * the epoch window is part of the verdict-cache context key (window
//    verdicts must never serve full-campaign lookups), while the campaign
//    OR-fold lands under the full context so any later split hits;
//  * a 2D campaign cancels cleanly mid-flight with sane progress;
//  * epoch-annotated units ship over the wire and come back bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eraser/canonical.h"
#include "eraser/eraser.h"
#include "eraser/remote.h"
#include "eraser/verdict_cache.h"
#include "frontend/compile.h"
#include "suite/random_stimulus.h"
#include "suite/suite.h"
#include "util/wire.h"

namespace eraser {
namespace {

using core::CampaignOptions;
using core::FaultBatching;

std::vector<fault::Fault> sample_faults(const rtl::Design& design,
                                        uint32_t n, uint64_t seed = 7) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = n;
    fopts.sample_seed = seed;
    return fault::generate_faults(design, fopts);
}

suite::RandomStimulus::Config epoch_config(uint32_t cycles,
                                           const char* reset = "rst",
                                           bool active_high = true) {
    suite::RandomStimulus::Config cfg;
    cfg.reset = reset;
    cfg.reset_active_high = active_high;
    cfg.cycles = cycles;
    cfg.seed = 0x2D2D2025;
    return cfg;
}

// --- window geometry ---------------------------------------------------------

TEST(EpochWindow, GeometryMapsOntoInnerStimulus) {
    // 10 cycles over 4 epochs: boundaries 0, 2, 5, 7, 10.
    auto inner =
        std::make_unique<suite::EpochRandomStimulus>(epoch_config(10), 4);
    ASSERT_EQ(inner->num_epochs(), 4u);
    EXPECT_EQ(inner->epoch_range(0), (std::pair<uint32_t, uint32_t>{0, 2}));
    EXPECT_EQ(inner->epoch_range(1), (std::pair<uint32_t, uint32_t>{2, 5}));
    EXPECT_EQ(inner->epoch_range(3), (std::pair<uint32_t, uint32_t>{7, 10}));

    // Window [1, 3): covers inner cycles [2, 7) as local [0, 5).
    sim::EpochWindowStimulus win(std::move(inner), 1, 3);
    EXPECT_EQ(win.num_cycles(), 5u);
    EXPECT_EQ(win.num_epochs(), 2u);
    EXPECT_EQ(win.epoch_range(0), (std::pair<uint32_t, uint32_t>{0, 3}));
    EXPECT_EQ(win.epoch_range(1), (std::pair<uint32_t, uint32_t>{3, 5}));
}

TEST(EpochWindow, EpochCountClampsToCycles) {
    const suite::EpochRandomStimulus s(epoch_config(3), 100);
    EXPECT_EQ(s.num_epochs(), 3u);
    const suite::EpochRandomStimulus one(epoch_config(100), 0);
    EXPECT_EQ(one.num_epochs(), 1u);
}

// --- 2D packing vs the serial epoch loop -------------------------------------

// The core bit-identity matrix: three circuits, both batching modes, odd
// fault counts (partial trailing 64-lane group) and an epoch count the
// split does not divide. epoch_split=1 is the serial oracle (one unit runs
// the per-epoch passes back to back); every other split must reproduce its
// bitmap exactly.
TEST(Epoch2D, SplitMatchesSerialAcrossCircuitsAndBatching) {
    suite::register_remote_stimuli();
    struct Pick {
        const char* name;
        const char* reset;
        bool active_high;
    };
    const Pick picks[] = {
        {"alu", "rst", true},
        {"apb", "rstn", false},
        {"riscv_mini", "rst", true},
    };
    constexpr uint32_t kEpochs = 6;   // not divisible by splits 4
    for (const Pick& p : picks) {
        const suite::Benchmark& b = suite::find_benchmark(p.name);
        auto design = suite::load_design(b);
        // 70 % 64 != 0: a partial trailing group in every fault-dim shard.
        const auto faults = sample_faults(*design, 70);
        ASSERT_FALSE(faults.empty()) << p.name;
        const core::StimulusSpec stim = suite::remote_stimulus(
            epoch_config(b.test_cycles, p.reset, p.active_high), kEpochs);

        core::Session session(*design, {.num_threads = 2});
        for (const auto batching :
             {FaultBatching::Word, FaultBatching::Off}) {
            CampaignOptions serial;
            serial.engine.batching = batching;
            serial.epoch_split = 1;
            serial.num_shards = 1;
            const auto oracle = session.submit(faults, stim, serial).wait();
            EXPECT_FALSE(oracle.canceled);

            for (const uint32_t split : {2u, 4u, kEpochs, 0u}) {
                CampaignOptions opts;
                opts.engine.batching = batching;
                opts.epoch_split = split;   // 0 = cost-model auto
                opts.num_shards = 3;
                const auto result =
                    session.submit(faults, stim, opts).wait();
                EXPECT_EQ(oracle.detected, result.detected)
                    << p.name << " batching=" << static_cast<int>(batching)
                    << " split=" << split;
                EXPECT_EQ(oracle.num_detected, result.num_detected)
                    << p.name << " split=" << split;
                EXPECT_FALSE(result.canceled);
            }
        }
    }
}

// A split larger than the epoch count must clamp, not produce empty units.
TEST(Epoch2D, OversizedSplitClamps) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = sample_faults(*design, 20);
    const core::StimulusSpec stim =
        suite::remote_stimulus(epoch_config(b.test_cycles), 3);

    core::Session session(*design, {.num_threads = 2});
    CampaignOptions serial;
    serial.epoch_split = 1;
    const auto oracle = session.submit(faults, stim, serial).wait();

    CampaignOptions opts;
    opts.epoch_split = 64;   // > 3 epochs: clamps to 3
    const auto result = session.submit(faults, stim, opts).wait();
    EXPECT_EQ(oracle.detected, result.detected);
    EXPECT_LE(result.num_shards, 3u);
}

// --- stimulus pipelining -----------------------------------------------------

TEST(Epoch2D, PipeliningIsVerdictNeutral) {
    const suite::Benchmark& b = suite::find_benchmark("riscv_mini");
    auto design = suite::load_design(b);
    const auto faults = sample_faults(*design, 90);
    core::Session session(*design);
    auto stim = suite::make_stimulus(b, b.test_cycles);

    CampaignOptions off;
    off.engine.pipeline_stimulus = false;
    const auto plain = session.run(faults, *stim, off);

    CampaignOptions on;
    on.engine.pipeline_stimulus = true;
    const auto piped = session.run(faults, *stim, on);

    EXPECT_EQ(plain.detected, piped.detected);
    EXPECT_EQ(plain.num_detected, piped.num_detected);
}

// --- verdict-cache key movement ----------------------------------------------

// The canonical stimulus hash must move when the epoch window moves (a
// window verdict is not the fault's verdict) and stay put for the legacy
// epochs == 0 encoding (old stores keep hitting).
TEST(Epoch2D, EpochWindowMovesCacheKey) {
    core::StimulusSpec legacy{"suite", {1, 2, 3}};
    const uint64_t h_legacy = core::canonical::stimulus_hash(legacy, 42);

    core::StimulusSpec full = legacy;
    full.epochs = 8;
    full.epoch_begin = 0;
    full.epoch_end = 8;
    EXPECT_FALSE(full.windowed());

    core::StimulusSpec window = full;
    window.epoch_begin = 2;
    window.epoch_end = 4;
    EXPECT_TRUE(window.windowed());

    core::StimulusSpec other = window;
    other.epoch_end = 5;

    const uint64_t h_full = core::canonical::stimulus_hash(full, 42);
    const uint64_t h_window = core::canonical::stimulus_hash(window, 42);
    const uint64_t h_other = core::canonical::stimulus_hash(other, 42);
    EXPECT_NE(h_legacy, h_full);
    EXPECT_NE(h_full, h_window);
    EXPECT_NE(h_window, h_other);

    const core::EngineOptions engine;
    EXPECT_NE(core::VerdictCache::context_key(7, full, engine),
              core::VerdictCache::context_key(7, window, engine));

    // The pipeline knob moves execution, never verdicts: the engine
    // fingerprint (and thus the context key) must ignore it.
    core::EngineOptions piped;
    piped.pipeline_stimulus = !engine.pipeline_stimulus;
    EXPECT_EQ(core::VerdictCache::context_key(7, window, engine),
              core::VerdictCache::context_key(7, window, piped));
}

// A 2D campaign's finalization must publish the OR-folded verdicts under
// the full-campaign context: a repeat submission — at a different split,
// including none — is served entirely from cache.
TEST(Epoch2D, CrossSplitCacheWarmHit) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = sample_faults(*design, 40);
    const core::StimulusSpec stim =
        suite::remote_stimulus(epoch_config(b.test_cycles), 4);

    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.verdict_cache =
        std::make_shared<core::VerdictCache>(core::VerdictCacheOptions{});
    core::Session session(*design, sopts);

    CampaignOptions split4;
    split4.epoch_split = 4;
    const auto first = session.submit(faults, stim, split4).wait();
    EXPECT_EQ(first.cache_hits, 0u);

    CampaignOptions serial;
    serial.epoch_split = 1;
    const auto repeat = session.submit(faults, stim, serial).wait();
    EXPECT_EQ(repeat.cache_hits, static_cast<uint32_t>(faults.size()))
        << "OR-folded verdicts must serve the full-campaign context";
    EXPECT_EQ(first.detected, repeat.detected);
}

// --- cancellation ------------------------------------------------------------

TEST(Epoch2D, CancelMidCampaign) {
    suite::register_remote_stimuli();
    // `dead` never reaches an output: undetectable faults, no early exit.
    auto design = frontend::compile(R"(
        module cancel2d_dut(input clk, input in, output reg out);
          reg dead;
          always @(posedge clk) begin
            dead <= in;
            out <= in;
          end
        endmodule
    )",
                                    "cancel2d_dut");
    std::vector<fault::Fault> faults;
    const rtl::SignalId dead = design->signal_id("dead");
    faults.push_back({dead, 0, false});
    faults.push_back({dead, 0, true});

    auto cfg = epoch_config(500'000'000, /*reset=*/"");
    const core::StimulusSpec stim = suite::remote_stimulus(cfg, 16);

    core::Session session(*design, {.num_threads = 2});
    CampaignOptions opts;
    opts.epoch_split = 8;
    auto handle = session.submit(faults, stim, opts);

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(handle.finished());
    EXPECT_TRUE(handle.cancel());
    const auto& result = handle.wait();
    EXPECT_TRUE(result.canceled);
    EXPECT_EQ(result.num_faults, 2u);
    const auto progress = handle.progress();
    EXPECT_LE(progress.faults_done, progress.faults_total);
    EXPECT_LE(progress.detected_so_far, progress.faults_total);
}

// --- over the wire -----------------------------------------------------------

/// In-process worker (accept loop + serve_connection), as in
/// remote_campaign_test.
class TestWorker {
  public:
    TestWorker() {
        listener_ = util::listen_loopback(port_);
        thread_ = std::thread([this] { accept_loop(); });
    }
    ~TestWorker() {
        stop_.store(true, std::memory_order_release);
        if (thread_.joinable()) thread_.join();
    }
    [[nodiscard]] uint16_t port() const { return port_; }

  private:
    void accept_loop() {
        while (!stop_.load(std::memory_order_acquire)) {
            try {
                util::UniqueFd fd =
                    util::accept_connection(listener_.get(), 50);
                util::WireConn conn(std::move(fd));
                (void)core::serve_connection(conn, cache_);
            } catch (const util::WireError&) {
                // Accept timeout or vanished client; retry.
            }
        }
    }

    uint16_t port_ = 0;
    util::UniqueFd listener_;
    core::WorkerDesignCache cache_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

// Epoch-annotated units over the wire: a 2D campaign with a remote worker
// attached produces the serial oracle's bitmap, and the units the worker
// executed carry their epoch windows home in the breakdown.
TEST(Epoch2D, RemoteWindowUnitsMatchLocal) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = sample_faults(*design, 30);
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim =
        suite::remote_stimulus(epoch_config(b.test_cycles), 6);

    core::CampaignResult oracle;
    {
        core::Session local(compiled, {.num_threads = 1});
        CampaignOptions serial;
        serial.epoch_split = 1;
        oracle = local.submit(faults, stim, serial).wait();
    }

    TestWorker worker;
    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.remote.workers = {worker.port()};
    sopts.scheduler.remote.design = suite::design_spec(b);
    sopts.scheduler.learn_costs = false;
    core::Session session(compiled, sopts);
    CampaignOptions opts;
    opts.epoch_split = 3;
    const auto result = session.submit(faults, stim, opts).wait();

    EXPECT_EQ(oracle.detected, result.detected);
    EXPECT_EQ(oracle.num_detected, result.num_detected);
    // Every unit reports a sane epoch window; together they cover [0, 6).
    std::vector<bool> covered(6, false);
    for (const auto& sb : result.stats.shards) {
        ASSERT_LT(sb.epoch_begin, sb.epoch_end);
        ASSERT_LE(sb.epoch_end, 6u);
        for (uint32_t e = sb.epoch_begin; e < sb.epoch_end; ++e) {
            covered[e] = true;
        }
    }
    for (uint32_t e = 0; e < 6; ++e) EXPECT_TRUE(covered[e]) << e;
}

}  // namespace
}  // namespace eraser
