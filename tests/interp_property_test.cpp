// Property tests for expression evaluation: random elaborated expression
// trees evaluated by the interpreter must match a direct big-integer-free
// oracle computed over the same tree, for thousands of operand vectors.
// Also checks algebraic identities the evaluator must respect.
#include <gtest/gtest.h>

#include "rtl/expr.h"
#include "rtl/ops.h"
#include "sim/interp.h"
#include "util/prng.h"

namespace eraser {
namespace {

using rtl::Expr;
using rtl::ExprPtr;
using rtl::Op;

/// Leaf-value provider for this test: signals are entries of a vector.
class VecCtx final : public sim::EvalContext {
  public:
    explicit VecCtx(std::vector<Value> vals) : vals_(std::move(vals)) {}
    Value read_signal(rtl::SignalId s) override { return vals_[s]; }
    Value read_array(rtl::ArrayId, uint64_t) override { return Value(0, 8); }
    void write_signal(rtl::SignalId, Value, bool) override {}
    void write_array(rtl::ArrayId, uint64_t, Value, bool) override {}

  private:
    std::vector<Value> vals_;
};

/// Direct recursive oracle over the same tree, written independently of
/// eval_op (intentional duplication: two implementations must agree).
uint64_t oracle(const Expr& e, const std::vector<Value>& leaves) {
    auto mask = [](uint64_t v, unsigned w) { return v & Value::mask(w); };
    switch (e.kind) {
        case Expr::Kind::Const: return e.cval.bits();
        case Expr::Kind::SignalRef:
            return mask(leaves[e.sig].bits(), e.width);
        case Expr::Kind::ArrayRead: return 0;
        case Expr::Kind::OpApply: {
            std::vector<uint64_t> a;
            for (const auto& arg : e.args) a.push_back(oracle(*arg, leaves));
            auto wa = [&](size_t i) { return e.args[i]->width; };
            switch (e.op) {
                case Op::Copy: return mask(a[0], e.width);
                case Op::Add: return mask(a[0] + a[1], e.width);
                case Op::Sub: return mask(a[0] - a[1], e.width);
                case Op::Mul: return mask(a[0] * a[1], e.width);
                case Op::And: return mask(a[0] & a[1], e.width);
                case Op::Or: return mask(a[0] | a[1], e.width);
                case Op::Xor: return mask(a[0] ^ a[1], e.width);
                case Op::Not: return mask(~a[0], e.width);
                case Op::Neg: return mask(~a[0] + 1, e.width);
                case Op::Eq: return a[0] == a[1] ? 1 : 0;
                case Op::Ne: return a[0] != a[1] ? 1 : 0;
                case Op::Lt: return a[0] < a[1] ? 1 : 0;
                case Op::Le: return a[0] <= a[1] ? 1 : 0;
                case Op::Mux: return a[0] != 0 ? a[1] : a[2];
                case Op::Concat:
                    return mask((a[0] << wa(1)) | a[1], e.width);
                case Op::Slice: return mask(a[0] >> e.imm, e.width);
                default: return 0;
            }
        }
    }
    return 0;
}

/// Random expression-tree builder over `num_leaves` signals.
ExprPtr random_expr(Prng& rng, int depth, unsigned num_leaves) {
    if (depth <= 0 || rng.chance(1, 3)) {
        if (rng.chance(1, 4)) {
            const unsigned w = 1 + static_cast<unsigned>(rng.below(32));
            return Expr::make_const(Value(rng.bits(w), w));
        }
        const auto sig = static_cast<rtl::SignalId>(rng.below(num_leaves));
        return Expr::make_signal(sig, 16);
    }
    switch (rng.below(5)) {
        case 0: {
            static const Op ops[] = {Op::Add, Op::Sub, Op::Mul, Op::And,
                                     Op::Or,  Op::Xor};
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            ExprPtr b = random_expr(rng, depth - 1, num_leaves);
            const unsigned w = std::max(a->width, b->width);
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            args.push_back(std::move(b));
            return Expr::make_op(ops[rng.below(6)], std::move(args), w);
        }
        case 1: {
            static const Op ops[] = {Op::Eq, Op::Ne, Op::Lt, Op::Le};
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            ExprPtr b = random_expr(rng, depth - 1, num_leaves);
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            args.push_back(std::move(b));
            return Expr::make_op(ops[rng.below(4)], std::move(args), 1);
        }
        case 2: {
            ExprPtr sel = random_expr(rng, depth - 1, num_leaves);
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            ExprPtr b = random_expr(rng, depth - 1, num_leaves);
            const unsigned w = std::max(a->width, b->width);
            std::vector<ExprPtr> args;
            args.push_back(std::move(sel));
            args.push_back(std::move(a));
            args.push_back(std::move(b));
            return Expr::make_op(Op::Mux, std::move(args), w);
        }
        case 3: {
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            ExprPtr b = random_expr(rng, depth - 1, num_leaves);
            if (a->width + b->width > 64) {
                // Too wide to concatenate; degrade to a unary op.
                const unsigned w = a->width;
                std::vector<ExprPtr> args;
                args.push_back(std::move(a));
                return Expr::make_op(Op::Not, std::move(args), w);
            }
            const unsigned w = a->width + b->width;
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            args.push_back(std::move(b));
            return Expr::make_op(Op::Concat, std::move(args), w);
        }
        default: {
            ExprPtr a = random_expr(rng, depth - 1, num_leaves);
            const unsigned aw = a->width;
            const unsigned lo = static_cast<unsigned>(rng.below(aw));
            const unsigned w = 1 + static_cast<unsigned>(rng.below(aw - lo));
            std::vector<ExprPtr> args;
            args.push_back(std::move(a));
            return Expr::make_op(Op::Slice, std::move(args), w, lo);
        }
    }
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz, ::testing::Range<uint64_t>(1, 9));

TEST_P(ExprFuzz, InterpreterMatchesOracle) {
    Prng rng(GetParam());
    constexpr unsigned kLeaves = 6;
    for (int tree = 0; tree < 50; ++tree) {
        const ExprPtr e = random_expr(rng, 4, kLeaves);
        for (int vec = 0; vec < 20; ++vec) {
            std::vector<Value> leaves;
            for (unsigned i = 0; i < kLeaves; ++i) {
                leaves.emplace_back(rng.bits(16), 16);
            }
            VecCtx ctx(leaves);
            const Value got = sim::eval_expr(*e, ctx);
            EXPECT_EQ(got.bits(), oracle(*e, leaves))
                << "seed " << GetParam() << " tree " << tree;
            EXPECT_EQ(got.width(), e->width);
        }
    }
}

TEST(ExprClone, DeepCopyIsIndependentAndEqual) {
    Prng rng(99);
    const ExprPtr e = random_expr(rng, 4, 4);
    const ExprPtr c = e->clone();
    std::vector<Value> leaves = {Value(1, 16), Value(2, 16), Value(3, 16),
                                 Value(4, 16)};
    VecCtx ctx(leaves);
    EXPECT_EQ(sim::eval_expr(*e, ctx), sim::eval_expr(*c, ctx));
}

TEST(EvalIdentities, AlgebraicProperties) {
    Prng rng(5);
    for (int i = 0; i < 200; ++i) {
        const unsigned w = 1 + static_cast<unsigned>(rng.below(32));
        const Value a(rng.bits(w), w), b(rng.bits(w), w);
        const Value ab[2] = {a, b};
        const Value ba[2] = {b, a};
        // Commutativity.
        EXPECT_EQ(rtl::eval_op(Op::Add, ab, w), rtl::eval_op(Op::Add, ba, w));
        EXPECT_EQ(rtl::eval_op(Op::Xor, ab, w), rtl::eval_op(Op::Xor, ba, w));
        // x ^ x == 0; x - x == 0.
        const Value aa[2] = {a, a};
        EXPECT_EQ(rtl::eval_op(Op::Xor, aa, w).bits(), 0u);
        EXPECT_EQ(rtl::eval_op(Op::Sub, aa, w).bits(), 0u);
        // ~~x == x.
        const Value na = rtl::eval_op(Op::Not, {&a, 1}, w);
        EXPECT_EQ(rtl::eval_op(Op::Not, {&na, 1}, w), a);
        // Add then Sub round-trips.
        const Value sum = rtl::eval_op(Op::Add, ab, w);
        const Value sb[2] = {sum, b};
        EXPECT_EQ(rtl::eval_op(Op::Sub, sb, w), a);
    }
}

}  // namespace
}  // namespace eraser
