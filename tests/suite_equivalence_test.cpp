// Table II's correctness claim, reproduced as a test: on every benchmark,
// Eraser's coverage equals the reference (our serial force-and-compare
// oracle standing in for Z01X) — checked fault-by-fault, with the implicit
// detector's soundness audited via shadow execution.
//
// Uses shortened cycle counts and sampled fault lists to stay CI-sized; the
// full-scale runs live in bench/table2_benchmarks.
// This suite deliberately exercises the deprecated pre-Session free
// functions as compatibility coverage for the Session wrappers.
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "eraser/campaign.h"
#include "suite/suite.h"

namespace eraser {
namespace {

class SuiteEquivalence : public ::testing::TestWithParam<suite::Benchmark> {};

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteEquivalence,
                         ::testing::ValuesIn(suite::registry()),
                         [](const auto& info) { return info.param.name; });

TEST_P(SuiteEquivalence, EraserCoverageMatchesOracle) {
    const suite::Benchmark& b = GetParam();
    auto design = suite::load_design(b);
    auto stim = suite::make_stimulus(b, b.test_cycles);

    fault::FaultGenOptions fopts;
    fopts.sample_max = 60;   // CI-sized sample
    fopts.sample_seed = 42;
    const auto faults = fault::generate_faults(*design, fopts);
    ASSERT_FALSE(faults.empty());

    baseline::SerialOptions sopts;
    const auto oracle = run_serial_campaign(*design, faults, *stim, sopts);

    for (const auto mode :
         {core::RedundancyMode::None, core::RedundancyMode::Explicit,
          core::RedundancyMode::Full}) {
        core::CampaignOptions copts;
        copts.engine.mode = mode;
        copts.engine.audit = true;
        const auto got =
            core::run_concurrent_campaign(*design, faults, *stim, copts);
        EXPECT_EQ(got.num_detected, oracle.num_detected)
            << b.name << " mode=" << static_cast<int>(mode);
        for (size_t f = 0; f < faults.size(); ++f) {
            EXPECT_EQ(got.detected[f], oracle.detected[f])
                << b.name << " mode=" << static_cast<int>(mode) << " fault "
                << faults[f].str(*design);
        }
        EXPECT_EQ(got.stats.audit_soundness_violations, 0u)
            << b.name << " mode=" << static_cast<int>(mode);
    }
}

TEST_P(SuiteEquivalence, RedundancySkipsDoNotChangeCounts) {
    // The three modes must agree on what is *executed plus skipped*: the
    // candidate population is mode-independent.
    const suite::Benchmark& b = GetParam();
    auto design = suite::load_design(b);
    auto stim = suite::make_stimulus(b, b.test_cycles / 2);

    fault::FaultGenOptions fopts;
    fopts.sample_max = 30;
    fopts.sample_seed = 7;
    const auto faults = fault::generate_faults(*design, fopts);

    uint64_t candidates[3] = {};
    uint64_t executed[3] = {};
    int i = 0;
    for (const auto mode :
         {core::RedundancyMode::None, core::RedundancyMode::Explicit,
          core::RedundancyMode::Full}) {
        core::CampaignOptions copts;
        copts.engine.mode = mode;
        const auto got =
            core::run_concurrent_campaign(*design, faults, *stim, copts);
        candidates[i] = got.stats.bn_candidates;
        executed[i] = got.stats.bn_executed +
                      got.stats.bn_skipped_explicit +
                      got.stats.bn_skipped_implicit;
        ++i;
    }
    EXPECT_EQ(candidates[0], candidates[1]) << b.name;
    EXPECT_EQ(candidates[1], candidates[2]) << b.name;
    // executed + skipped covers every candidate (solo activations excluded
    // from skipping, so totals match candidates exactly).
    EXPECT_EQ(executed[0], candidates[0]) << b.name;
    EXPECT_EQ(executed[1], candidates[1]) << b.name;
    EXPECT_EQ(executed[2], candidates[2]) << b.name;
}

}  // namespace
}  // namespace eraser
