// CFG construction, VDG simplification, and Algorithm 1 unit tests —
// including a faithful reconstruction of the paper's Fig. 5 walk-through.
#include <gtest/gtest.h>

#include <map>

#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "frontend/compile.h"
#include "sim/interp.h"

namespace eraser {
namespace {

using cfg::Cfg;
using cfg::CfgNode;
using cfg::Vdg;

/// Simple map-backed context for CFG/VDG tests.
class MapCtx final : public sim::EvalContext {
  public:
    explicit MapCtx(const rtl::Design& design) : design_(design) {}

    void set(const std::string& name, uint64_t v) {
        const rtl::SignalId sig = design_.signal_id(name);
        vals_[sig] = Value(v, design_.signals[sig].width);
    }
    Value read_signal(rtl::SignalId sig) override {
        auto it = vals_.find(sig);
        return it != vals_.end()
                   ? it->second
                   : Value(0, design_.signals[sig].width);
    }
    Value read_array(rtl::ArrayId, uint64_t) override { return Value(0, 1); }
    void write_signal(rtl::SignalId sig, Value v, bool) override {
        vals_[sig] = v;
        writes.emplace_back(sig, v);
    }
    void write_array(rtl::ArrayId, uint64_t, Value, bool) override {}

    std::vector<std::pair<rtl::SignalId, Value>> writes;

  private:
    const rtl::Design& design_;
    std::map<rtl::SignalId, Value> vals_;
};

/// The paper's Fig. 5(a) behavioral code, verbatim structure.
std::unique_ptr<rtl::Design> fig5_design() {
    return frontend::compile(R"(
        module top(input clk, input [1:0] s, input [7:0] c, input [7:0] g,
                   input [7:0] k, input [7:0] b,
                   output reg [7:0] r, output reg [7:0] a);
          always @(posedge clk) begin
            if (s == 0) begin
              r <= c + g;
              a <= k;
            end else if (s == 1)
              r <= 0;
            else begin
              a <= 0;
              if (b == 0)
                r <= r + 1;
              else
                r <= a * r;
            end
          end
        endmodule
    )",
                             "top");
}

TEST(Cfg, Fig5Structure) {
    auto design = fig5_design();
    const rtl::BehavNode& behav = design->behaviors[0];
    const Cfg c = Cfg::build(*behav.body, *design);
    // Three decision points: s==0, s==1, b==0.
    EXPECT_EQ(c.num_decisions(), 3u);
    // Segments: {r<=c+g; a<=k}, {r<=0}, {a<=0}, {r<=r+1}, {r<=a*r}.
    EXPECT_EQ(c.num_segments(), 5u);
}

TEST(Cfg, MergesStraightLineAssigns) {
    auto design = frontend::compile(R"(
        module top(input clk, input [7:0] x, output reg [7:0] p,
                   output reg [7:0] q, output reg [7:0] r);
          always @(posedge clk) begin
            p <= x;
            q <= x + 1;
            r <= x + 2;
          end
        endmodule
    )",
                                    "top");
    const Cfg c = Cfg::build(*design->behaviors[0].body, *design);
    EXPECT_EQ(c.num_decisions(), 0u);
    EXPECT_EQ(c.num_segments(), 1u);   // all three merged
    for (const CfgNode& n : c.nodes) {
        if (n.kind == CfgNode::Kind::Segment && !n.assigns.empty()) {
            EXPECT_EQ(n.assigns.size(), 3u);
        }
    }
}

TEST(Cfg, ExecutionMatchesInterpreter) {
    auto design = fig5_design();
    const rtl::BehavNode& behav = design->behaviors[0];
    const Cfg c = Cfg::build(*behav.body, *design);

    // Sweep all s values and a few data points; CFG execution must produce
    // exactly the interpreter's writes, in order.
    for (uint64_t s = 0; s < 4; ++s) {
        for (uint64_t b = 0; b < 2; ++b) {
            MapCtx via_cfg(*design);
            via_cfg.set("s", s);
            via_cfg.set("c", 7);
            via_cfg.set("g", 9);
            via_cfg.set("k", 3);
            via_cfg.set("b", b);
            via_cfg.set("r", 5);
            via_cfg.set("a", 2);
            MapCtx via_interp(*design);
            via_interp.set("s", s);
            via_interp.set("c", 7);
            via_interp.set("g", 9);
            via_interp.set("k", 3);
            via_interp.set("b", b);
            via_interp.set("r", 5);
            via_interp.set("a", 2);

            c.execute(*design, via_cfg);
            sim::exec_stmt(*behav.body, *design, via_interp);
            ASSERT_EQ(via_cfg.writes.size(), via_interp.writes.size())
                << "s=" << s << " b=" << b;
            for (size_t i = 0; i < via_cfg.writes.size(); ++i) {
                EXPECT_EQ(via_cfg.writes[i].first, via_interp.writes[i].first);
                EXPECT_EQ(via_cfg.writes[i].second,
                          via_interp.writes[i].second);
            }
        }
    }
}

TEST(Vdg, RemovesEmptyDependencyNodes) {
    auto design = fig5_design();
    const Cfg c = Cfg::build(*design->behaviors[0].body, *design);
    const Vdg v = Vdg::build(c);
    // `r <= 0` and `a <= 0` read nothing -> removed. Segments left:
    // {r<=c+g; a<=k} (reads c,g,k), {r<=r+1} (reads r), {r<=a*r} (reads a,r).
    EXPECT_EQ(v.num_dependency_nodes(), 3u);
    EXPECT_EQ(v.num_decision_nodes(), 3u);
}

TEST(Vdg, Fig5WalkClassifiesRedundancy) {
    auto design = fig5_design();
    const Cfg c = Cfg::build(*design->behaviors[0].body, *design);
    const Vdg v = Vdg::build(c);

    const rtl::SignalId sig_b = design->signal_id("b");
    const rtl::SignalId sig_r = design->signal_id("r");
    const rtl::SignalId sig_k = design->signal_id("k");
    const rtl::SignalId sig_c = design->signal_id("c");

    // Scenario of Fig. 5(d)/(e): s=2 (else-branch), b good=1 fault=5 (path
    // decision differs in value but both pick the same arm), k and c
    // divergent but dominated (not on the taken path), a and r consistent.
    MapCtx good(*design);
    good.set("s", 2);
    good.set("b", 1);
    good.set("c", 2);
    good.set("g", 2);
    good.set("k", 1);
    good.set("r", 1);
    good.set("a", 2);
    MapCtx faulty(*design);
    faulty.set("s", 2);
    faulty.set("b", 5);   // differs, but (b==0) still false
    faulty.set("c", 9);   // differs, but not read on the taken path
    faulty.set("g", 2);
    faulty.set("k", 4);   // differs, but not read on the taken path
    faulty.set("r", 1);
    faulty.set("a", 2);

    auto visible = [&](rtl::SignalId sig) {
        return sig == sig_b || sig == sig_k || sig == sig_c;
    };
    EXPECT_TRUE(cfg::implicit_redundant(
        v, good, faulty, visible, [](rtl::ArrayId) { return false; }));

    // Fig. 3(c) analogue: r diverges and r is on the taken path's
    // dependencies -> not redundant.
    MapCtx faulty2(*design);
    faulty2.set("s", 2);
    faulty2.set("b", 1);
    faulty2.set("c", 2);
    faulty2.set("g", 2);
    faulty2.set("k", 1);
    faulty2.set("r", 3);   // visible and read by `r <= a * r`
    faulty2.set("a", 2);
    auto visible2 = [&](rtl::SignalId sig) { return sig == sig_r; };
    EXPECT_FALSE(cfg::implicit_redundant(
        v, good, faulty2, visible2, [](rtl::ArrayId) { return false; }));

    // Path divergence: fault flips the branch (b good=1 -> arm "else",
    // fault b=0 -> arm "then").
    MapCtx faulty3(*design);
    faulty3.set("s", 2);
    faulty3.set("b", 0);
    faulty3.set("c", 2);
    faulty3.set("g", 2);
    faulty3.set("k", 1);
    faulty3.set("r", 1);
    faulty3.set("a", 2);
    auto visible3 = [&](rtl::SignalId sig) { return sig == sig_b; };
    EXPECT_FALSE(cfg::implicit_redundant(
        v, good, faulty3, visible3, [](rtl::ArrayId) { return false; }));
}

TEST(Vdg, ArrayDivergenceIsConservative) {
    auto design = frontend::compile(R"(
        module top(input clk, input [2:0] addr, output reg [7:0] q);
          reg [7:0] mem [0:7];
          always @(posedge clk) q <= mem[addr];
        endmodule
    )",
                                    "top");
    const Cfg c = Cfg::build(*design->behaviors[0].body, *design);
    const Vdg v = Vdg::build(c);
    MapCtx good(*design);
    MapCtx faulty(*design);
    // No scalar divergence, but the memory has a divergent element: the
    // conservative rule must report non-redundant.
    EXPECT_FALSE(cfg::implicit_redundant(
        v, good, faulty, [](rtl::SignalId) { return false; },
        [](rtl::ArrayId) { return true; }));
    EXPECT_TRUE(cfg::implicit_redundant(
        v, good, faulty, [](rtl::SignalId) { return false; },
        [](rtl::ArrayId) { return false; }));
}

TEST(Cfg, EmptyBodyIsJustExit) {
    auto design = frontend::compile(R"(
        module top(input clk, output reg q);
          always @(posedge clk) ;
        endmodule
    )",
                                    "top");
    const Cfg c = Cfg::build(*design->behaviors[0].body, *design);
    EXPECT_EQ(c.num_decisions(), 0u);
    EXPECT_EQ(c.num_segments(), 0u);
    MapCtx ctx(*design);
    c.execute(*design, ctx);   // must terminate with no writes
    EXPECT_TRUE(ctx.writes.empty());
}

}  // namespace
}  // namespace eraser
