// The CampaignScheduler contract (eraser/scheduler.h):
//
//  * determinism first: detection bitmaps are bit-identical under every
//    scheduler configuration — priorities x quotas x weights x fair-share
//    x learned-vs-static costs x Word/Off batching — on several suite
//    circuits;
//  * priority classes preempt at shard boundaries; FIFO holds within a
//    class when fair share is off;
//  * max_workers quotas bound a campaign's concurrent shards;
//  * bounded admission queues refuse try_submit and block submit
//    (backpressure);
//  * the CostModel learns from measured shards (EWMA direction, deferral
//    rates) and the group-packer seam validates its permutation;
//  * ShardBreakdown::queue_seconds reflects scheduler wait, and the
//    blocking Session::run records a shard-0 breakdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eraser/eraser.h"
#include "suite/suite.h"
#include "util/diagnostics.h"

namespace eraser {
namespace {

using core::CampaignOptions;
using core::FaultBatching;
using core::Priority;

std::vector<fault::Fault> ci_faults(const rtl::Design& design,
                                    uint32_t sample = 60) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = sample;
    fopts.sample_seed = 42;
    return fault::generate_faults(design, fopts);
}

/// Delegating stimulus that blocks initialize() until released — pins a
/// pool worker so tests can stage deterministic scheduler states (queued
/// campaigns, full admission queues) without sleeping for magic durations.
class GateStimulus final : public sim::Stimulus {
  public:
    GateStimulus(std::unique_ptr<sim::Stimulus> inner,
                 std::atomic<bool>& release)
        : inner_(std::move(inner)), release_(&release) {}
    void bind(const rtl::Design& design) override { inner_->bind(design); }
    [[nodiscard]] std::string clock_name() const override {
        return inner_->clock_name();
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return inner_->num_cycles();
    }
    void initialize(sim::DriveHandle& h) override {
        while (!release_->load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        inner_->initialize(h);
    }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        inner_->apply(cycle, h);
    }

  private:
    std::unique_ptr<sim::Stimulus> inner_;
    std::atomic<bool>* release_;
};

/// Delegating stimulus that tallies how many instances are alive at once —
/// one stimulus lives per running shard engine, so the high-water mark is
/// the campaign's realized worker concurrency.
struct ConcurrencyTally {
    std::atomic<int> current{0};
    std::atomic<int> peak{0};
};

class TalliedStimulus final : public sim::Stimulus {
  public:
    TalliedStimulus(std::unique_ptr<sim::Stimulus> inner,
                    ConcurrencyTally& tally)
        : inner_(std::move(inner)), tally_(&tally) {
        const int now = tally_->current.fetch_add(1) + 1;
        int peak = tally_->peak.load();
        while (now > peak && !tally_->peak.compare_exchange_weak(peak, now)) {
        }
    }
    ~TalliedStimulus() override { tally_->current.fetch_sub(1); }
    void bind(const rtl::Design& design) override { inner_->bind(design); }
    [[nodiscard]] std::string clock_name() const override {
        return inner_->clock_name();
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return inner_->num_cycles();
    }
    void initialize(sim::DriveHandle& h) override { inner_->initialize(h); }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        inner_->apply(cycle, h);
    }

  private:
    std::unique_ptr<sim::Stimulus> inner_;
    ConcurrencyTally* tally_;
};

// --- determinism across scheduler configurations ----------------------------

// The acceptance criterion: priorities x quotas x weights x learned-vs-
// static costs x Word/Off batching must not move a single verdict bit, on
// at least three suite circuits. The learning session submits sequentially
// so later campaigns really partition on fed-back measurements.
TEST(SchedulerEquivalence, BitIdenticalAcrossSchedulerConfigs) {
    const auto& registry = suite::registry();
    ASSERT_GE(registry.size(), 3u);
    for (size_t c = 0; c < 3; ++c) {
        const suite::Benchmark& b = registry[c];
        auto design = suite::load_design(b);
        const auto faults = ci_faults(*design);
        ASSERT_FALSE(faults.empty()) << b.name;
        auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

        auto compiled = core::CompiledDesign::build(*design);
        core::Session ref_session(compiled, {.num_threads = 1});
        auto ref_stim = suite::make_stimulus(b, b.test_cycles);
        const auto ref = ref_session.run(faults, *ref_stim, {});

        struct Cfg {
            FaultBatching batching;
            Priority priority;
            uint32_t quota;
            uint32_t weight;
            uint32_t shards;
        };
        const std::vector<Cfg> sweep = {
            {FaultBatching::Word, Priority::High, 0, 1, 0},
            {FaultBatching::Word, Priority::Low, 1, 2, 4},
            {FaultBatching::Word, Priority::Normal, 2, 1, 7},
            {FaultBatching::Off, Priority::High, 1, 1, 3},
            {FaultBatching::Off, Priority::Low, 0, 3, 5},
            {FaultBatching::Word, Priority::Normal, 0, 1, 1},
        };

        // Learning session: the cost table evolves between submissions, so
        // later configs partition on measured costs (and the learned
        // packer, once observations exist).
        core::Session learn_session(compiled, {.num_threads = 2});
        for (size_t i = 0; i < sweep.size(); ++i) {
            CampaignOptions opts;
            opts.engine.batching = sweep[i].batching;
            opts.priority = sweep[i].priority;
            opts.max_workers = sweep[i].quota;
            opts.weight = sweep[i].weight;
            opts.num_shards = sweep[i].shards;
            const auto run =
                learn_session.submit(faults, factory, opts).wait();
            EXPECT_EQ(run.detected, ref.detected)
                << b.name << " learned config " << i;
            EXPECT_EQ(run.num_detected, ref.num_detected);
        }
        EXPECT_GT(learn_session.scheduler().cost_model().observations(), 0u)
            << "the feedback loop never observed a shard";

        // Static session: learning and fair share off — the historical
        // static-VDG partition with strict FIFO dispatch.
        core::SessionOptions static_opts;
        static_opts.num_threads = 2;
        static_opts.scheduler.learn_costs = false;
        static_opts.scheduler.fair_share = false;
        core::Session static_session(compiled, static_opts);
        for (const auto batching : {FaultBatching::Word, FaultBatching::Off}) {
            CampaignOptions opts;
            opts.engine.batching = batching;
            opts.num_shards = 4;
            opts.max_workers = 2;
            const auto run =
                static_session.submit(faults, factory, opts).wait();
            EXPECT_EQ(run.detected, ref.detected) << b.name << " static";
        }
        EXPECT_EQ(static_session.scheduler().cost_model().observations(), 0u)
            << "learn_costs=false must not feed the model";
    }
}

// --- priority classes -------------------------------------------------------

// One worker, three campaigns: a gated one pinning the worker, then a Low
// and a High submitted while it is pinned. When the gate opens, every High
// shard must complete before any Low shard — the class preempts at the
// shard boundary regardless of submission order.
TEST(SchedulerPriority, HighClassOvertakesLowAtShardBoundary) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 1});
    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };

    std::mutex order_mu;
    std::vector<char> order;   // 'L' / 'H' per completed shard
    auto tagged_observer = [&](char tag) {
        return [&, tag](const core::ShardEvent& e) {
            if (e.terminal) return;
            std::lock_guard<std::mutex> lock(order_mu);
            order.push_back(tag);
        };
    };

    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(faults, gate_factory, gate_opts);

    CampaignOptions low_opts;
    low_opts.priority = Priority::Low;
    low_opts.num_shards = 4;
    auto low = session.submit(faults, factory, low_opts,
                              tagged_observer('L'));

    CampaignOptions high_opts;
    high_opts.priority = Priority::High;
    high_opts.num_shards = 4;
    auto high = session.submit(faults, factory, high_opts,
                               tagged_observer('H'));

    release.store(true, std::memory_order_release);
    (void)gate.wait();
    (void)low.wait();
    (void)high.wait();

    ASSERT_EQ(order.size(), high.progress().shards_total +
                                low.progress().shards_total);
    const auto first_low =
        std::find(order.begin(), order.end(), 'L') - order.begin();
    const auto last_high =
        order.rend() - std::find(order.rbegin(), order.rend(), 'H') - 1;
    EXPECT_LT(last_high, first_low)
        << "a Low shard ran before the High campaign finished: "
        << std::string(order.begin(), order.end());
}

// With fair share off, same-class campaigns dispatch in strict submission
// order: every shard of the first submission completes before any of the
// second.
TEST(SchedulerPriority, FifoWithinClassWhenFairShareOff) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.fair_share = false;
    core::Session session(*design, sopts);

    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };
    std::mutex order_mu;
    std::vector<char> order;
    auto tagged_observer = [&](char tag) {
        return [&, tag](const core::ShardEvent& e) {
            if (e.terminal) return;
            std::lock_guard<std::mutex> lock(order_mu);
            order.push_back(tag);
        };
    };

    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(faults, gate_factory, gate_opts);
    CampaignOptions opts;
    opts.num_shards = 3;
    auto first = session.submit(faults, factory, opts, tagged_observer('A'));
    auto second = session.submit(faults, factory, opts, tagged_observer('B'));
    release.store(true, std::memory_order_release);
    (void)gate.wait();
    (void)first.wait();
    (void)second.wait();

    const std::string seq(order.begin(), order.end());
    EXPECT_EQ(seq.find('B'), seq.rfind('A') + 1)
        << "FIFO order violated: " << seq;
}

// --- quotas -----------------------------------------------------------------

// max_workers bounds how many of a campaign's shards run concurrently; the
// stimulus high-water mark is the realized concurrency.
TEST(SchedulerQuota, MaxWorkersBoundsConcurrentShards) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);

    core::Session session(*design, {.num_threads = 4});
    for (const uint32_t quota : {1u, 2u}) {
        ConcurrencyTally tally;
        auto factory = [&]() -> std::unique_ptr<sim::Stimulus> {
            return std::make_unique<TalliedStimulus>(
                suite::make_stimulus(b, b.test_cycles), tally);
        };
        CampaignOptions opts;
        opts.num_shards = 8;
        opts.max_workers = quota;
        const auto result = session.submit(faults, factory, opts).wait();
        EXPECT_LE(tally.peak.load(), static_cast<int>(quota));
        EXPECT_EQ(result.num_shards, 8u);
        EXPECT_EQ(result.num_threads, quota);
        EXPECT_FALSE(result.canceled);
    }
}

// --- backpressure -----------------------------------------------------------

// A bounded scheduler (max_active=1, queue_capacity=1): with one campaign
// running and one queued, try_submit refuses; blocking submit waits for
// space and proceeds once the running campaign finishes.
TEST(SchedulerBackpressure, TrySubmitRefusesAndSubmitBlocksWhenFull) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.max_active = 1;
    sopts.scheduler.queue_capacity = 1;
    core::Session session(*design, sopts);

    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };

    CampaignOptions opts;
    opts.num_shards = 1;
    auto running = session.submit(faults, gate_factory, opts);   // active
    auto queued = session.submit(faults, factory, opts);         // queue 1/1

    auto refused = session.try_submit(faults, factory, opts);
    EXPECT_FALSE(refused.valid());
    EXPECT_EQ(session.scheduler().stats().rejected, 1u);
    EXPECT_EQ(session.scheduler().stats().queued, 1u);

    std::atomic<bool> unblocked{false};
    core::CampaignHandle blocked;
    std::thread submitter([&] {
        blocked = session.submit(faults, factory, opts);   // blocks on space
        unblocked.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(unblocked.load())
        << "submit must block while the admission queue is full";

    release.store(true, std::memory_order_release);
    submitter.join();
    EXPECT_TRUE(unblocked.load());

    const auto& r1 = running.wait();
    const auto& r2 = queued.wait();
    const auto& r3 = blocked.wait();
    EXPECT_EQ(r1.detected, r2.detected);
    EXPECT_EQ(r2.detected, r3.detected);
    // wait() returns at finalization, a hair before the worker's scheduler
    // bookkeeping retires the campaign from the active set — poll briefly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (session.scheduler().stats().active != 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    EXPECT_EQ(session.scheduler().stats().active, 0u);
    EXPECT_EQ(session.scheduler().stats().queued, 0u);
}

// Canceling a campaign that is still waiting in the admission queue must
// finalize it immediately — wait() returns a canceled partial result with
// zero completed shards even while the only worker is pinned by another
// campaign (the canceled campaign never needs a worker at all).
TEST(SchedulerBackpressure, CancelWhileQueuedFinalizesWithoutAWorker) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.max_active = 1;
    sopts.scheduler.queue_capacity = 4;
    core::Session session(*design, sopts);

    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };
    CampaignOptions opts;
    opts.num_shards = 2;
    auto gate = session.submit(faults, gate_factory, opts);
    auto queued = session.submit(faults, factory, opts);   // waits behind gate

    EXPECT_TRUE(queued.cancel());
    const auto& result = queued.wait();   // must not need the pinned worker
    EXPECT_TRUE(result.canceled);
    EXPECT_EQ(result.num_detected, 0u);
    const auto progress = queued.progress();
    EXPECT_TRUE(progress.finished);
    EXPECT_EQ(progress.shards_done, 0u);
    EXPECT_EQ(session.scheduler().stats().queued, 0u);

    release.store(true, std::memory_order_release);
    EXPECT_FALSE(gate.wait().canceled);
}

// --- cost model -------------------------------------------------------------

TEST(CostModel, EwmaMovesCostsTowardMeasurementsDeterministically) {
    auto design = frontend::compile(R"(
        module cm_dut(input clk, input a, input b, output reg out);
          reg ra; reg rb;
          always @(posedge clk) begin
            ra <= a;
            rb <= b;
            out <= ra ^ rb;
          end
        endmodule
    )",
                                    "cm_dut");
    auto compiled = core::CompiledDesign::build(*design);
    const rtl::SignalId ra = design->signal_id("ra");
    const rtl::SignalId rb = design->signal_id("rb");
    core::CostModel model(*compiled, 0.5);

    const std::vector<fault::Fault> ra_faults = {{ra, 0, false},
                                                 {ra, 0, true}};
    const double seed_ra = model.signal_cost(ra);
    const double seed_rb = model.signal_cost(rb);

    // First observation calibrates the seconds-per-unit scale: surprise is
    // 1.0 by construction, so no cost moves.
    core::ShardBreakdown bd;
    bd.wall_seconds = 1.0;
    model.observe_shard(ra_faults, bd, {});
    EXPECT_DOUBLE_EQ(model.signal_cost(ra), seed_ra);
    EXPECT_EQ(model.observations(), 1u);

    // 4x slower than calibrated: gain = clamp(1 - a + a*surprise) caps at
    // 2.0 — ra's cost doubles, rb (not in the shard) is untouched.
    bd.wall_seconds = 4.0;
    model.observe_shard(ra_faults, bd, {});
    EXPECT_DOUBLE_EQ(model.signal_cost(ra), seed_ra * 2.0);
    EXPECT_DOUBLE_EQ(model.signal_cost(rb), seed_rb);

    // Integer costs scale by kCostScale and track the learned table.
    const auto costs = model.fault_costs(ra_faults);
    ASSERT_EQ(costs.size(), 2u);
    EXPECT_EQ(costs[0],
              static_cast<uint64_t>(std::llround(
                  model.signal_cost(ra) * core::CostModel::kCostScale)));

    // Deferral rates EWMA from the lane counters toward the shard's rate.
    core::Instrumentation stats;
    stats.bn_lane_survivors = 1;
    stats.bn_lane_deferred = 3;
    bd.wall_seconds = 1e-9;   // negligible; this observation is about lanes
    model.observe_shard(ra_faults, bd, stats);
    EXPECT_NEAR(model.signal_defer_rate(ra), 0.5 * 0.75, 1e-12);
    EXPECT_DOUBLE_EQ(model.signal_defer_rate(rb), 0.0);

    // Shards that never ran must not pollute the table.
    const uint64_t before = model.observations();
    bd.wall_seconds = 0.0;
    model.observe_shard(ra_faults, bd, {});
    EXPECT_EQ(model.observations(), before);
}

// --- group packer seam ------------------------------------------------------

TEST(GroupPacker, CustomOrderPartitionsEveryFaultOnceAndValidates) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);
    const auto costs = compiled->fault_costs(faults);

    const core::GroupPacker reversed =
        [](std::span<const fault::Fault> fs,
           std::span<const uint64_t>) {
            std::vector<uint32_t> order(fs.size());
            for (uint32_t i = 0; i < fs.size(); ++i) {
                order[i] = static_cast<uint32_t>(fs.size()) - 1 - i;
            }
            return order;
        };
    const auto shards = core::make_shards_grouped(
        faults, costs, 4, core::ShardPolicy::CostBalanced, reversed);

    std::vector<int> seen(faults.size(), 0);
    for (const auto& shard : shards) {
        ASSERT_EQ(shard.faults.size(), shard.global_ids.size());
        for (size_t i = 0; i < shard.global_ids.size(); ++i) {
            seen[shard.global_ids[i]]++;
            if (i > 0) {
                EXPECT_LT(shard.global_ids[i - 1], shard.global_ids[i])
                    << "global ids must stay ascending within a shard";
            }
        }
    }
    for (size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], 1) << "fault " << i;
    }

    const core::GroupPacker truncated =
        [](std::span<const fault::Fault> fs, std::span<const uint64_t>) {
            return std::vector<uint32_t>(fs.size() / 2);
        };
    EXPECT_THROW((void)core::make_shards_grouped(
                     faults, costs, 4, core::ShardPolicy::CostBalanced,
                     truncated),
                 SimError);

    const core::GroupPacker duplicated =
        [](std::span<const fault::Fault> fs, std::span<const uint64_t>) {
            return std::vector<uint32_t>(fs.size(), 0);
        };
    EXPECT_THROW((void)core::make_shards_grouped(
                     faults, costs, 4, core::ShardPolicy::CostBalanced,
                     duplicated),
                 SimError);
}

// --- breakdowns -------------------------------------------------------------

// Satellite fix: the blocking Session::run path records a shard-0
// breakdown exactly like a one-shard submit, so bench rows keep their
// phase timing.
TEST(SchedulerBreakdown, BlockingRunRecordsShardZeroBreakdown) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);

    core::Session session(*design, {.num_threads = 1});
    auto stim = suite::make_stimulus(b, b.test_cycles);
    CampaignOptions opts;
    opts.engine.time_phases = true;
    const auto result = session.run(faults, *stim, opts);

    ASSERT_EQ(result.stats.shards.size(), 1u);
    const core::ShardBreakdown& sb = result.stats.shards.front();
    EXPECT_EQ(sb.shard, 0u);
    EXPECT_EQ(sb.faults, faults.size());
    EXPECT_EQ(sb.detected, result.num_detected);
    EXPECT_GT(sb.est_cost, 0u);
    EXPECT_GE(sb.wall_seconds, 0.0);
    EXPECT_EQ(sb.queue_seconds, 0.0);
}

// queue_seconds measures submit -> engine start: a campaign stuck behind a
// gated worker accumulates at least the gate's hold time.
TEST(SchedulerBreakdown, QueueSecondsReflectSchedulerWait) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 1});
    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };
    CampaignOptions opts;
    opts.num_shards = 1;
    auto gate = session.submit(faults, gate_factory, opts);
    auto waiting = session.submit(faults, factory, opts);

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    release.store(true, std::memory_order_release);
    (void)gate.wait();
    const auto& result = waiting.wait();

    ASSERT_FALSE(result.stats.shards.empty());
    for (const auto& sb : result.stats.shards) {
        EXPECT_GE(sb.queue_seconds, 0.025)
            << "shard started before the gate released";
    }
}

// --- terminal events and cancellation edges ---------------------------------

// Every campaign's observer sequence ends with exactly one terminal event,
// after every shard event, with the sentinel shard index and empty spans.
TEST(SchedulerTerminal, TerminalEventIsLastAndExactlyOnce) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 4});
    CampaignOptions opts;
    opts.num_shards = 3;
    std::atomic<int> shard_events{0};
    std::atomic<int> terminal_events{0};
    auto handle = session.submit(
        faults, factory, opts, [&](const core::ShardEvent& e) {
            if (e.terminal) {
                EXPECT_EQ(e.shard, core::ShardEvent::kTerminalShard);
                EXPECT_TRUE(e.global_ids.empty());
                EXPECT_TRUE(e.detected.empty());
                ++terminal_events;
                return;
            }
            EXPECT_EQ(terminal_events.load(), 0)
                << "shard event after the terminal event";
            ++shard_events;
        });
    const auto& result = handle.wait();
    EXPECT_FALSE(result.canceled);
    EXPECT_EQ(shard_events.load(), 3);
    EXPECT_EQ(terminal_events.load(), 1);
}

// An empty fault list used to leave the campaign with zero shards and zero
// pending jobs — nothing ever finalized it and wait() hung forever. It must
// finalize at submit: complete, empty verdicts, terminal event fired.
TEST(SchedulerTerminal, EmptyFaultListCampaignFinishesImmediately) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 1});
    std::atomic<int> terminal_events{0};
    std::atomic<int> shard_events{0};
    const std::vector<fault::Fault> none;
    auto handle = session.submit(
        none, factory, {}, [&](const core::ShardEvent& e) {
            (e.terminal ? terminal_events : shard_events)++;
        });
    const auto& result = handle.wait();   // pre-fix: hangs here
    EXPECT_FALSE(result.canceled);
    EXPECT_EQ(result.num_faults, 0u);
    EXPECT_EQ(result.num_detected, 0u);
    EXPECT_TRUE(result.detected.empty());
    EXPECT_EQ(result.num_shards, 0u);
    EXPECT_TRUE(handle.progress().finished);
    EXPECT_EQ(shard_events.load(), 0);
    EXPECT_EQ(terminal_events.load(), 1);
}

// The cancel <-> admission race: a cancel landing while the campaign still
// waits in the admission queue must withdraw it, produce a canceled result,
// and fire the terminal event exactly once — with zero shard events and
// without ever needing the (pinned) worker.
TEST(SchedulerTerminal, CancelBeforeAdmissionFiresTerminalExactlyOnce) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.max_active = 1;
    sopts.scheduler.queue_capacity = 4;
    core::Session session(*design, sopts);

    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };
    CampaignOptions opts;
    opts.num_shards = 2;
    auto gate = session.submit(faults, gate_factory, opts);

    std::atomic<int> shard_events{0};
    std::atomic<int> terminal_events{0};
    auto victim = session.submit(
        faults, factory, opts, [&](const core::ShardEvent& e) {
            (e.terminal ? terminal_events : shard_events)++;
        });
    EXPECT_TRUE(victim.cancel());
    const auto& result = victim.wait();
    EXPECT_TRUE(result.canceled);
    EXPECT_EQ(shard_events.load(), 0);
    EXPECT_EQ(terminal_events.load(), 1);

    release.store(true, std::memory_order_release);
    EXPECT_FALSE(gate.wait().canceled);
    EXPECT_EQ(terminal_events.load(), 1);
}

// Stress the same race from the other side: cancel() fired concurrently
// with the admission that a released gate triggers. Whatever interleaving
// wins, the invariants hold — terminal exactly once, and the result is
// flagged canceled iff not every shard event was delivered.
TEST(SchedulerTerminal, CancelAdmissionRaceKeepsTerminalInvariants) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.max_active = 1;
    sopts.scheduler.queue_capacity = 4;
    core::Session session(*design, sopts);
    CampaignOptions opts;
    opts.num_shards = 2;

    for (int iter = 0; iter < 40; ++iter) {
        std::atomic<bool> release{false};
        auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
            return std::make_unique<GateStimulus>(
                suite::make_stimulus(b, b.test_cycles), release);
        };
        CampaignOptions gate_opts;
        gate_opts.num_shards = 1;
        auto gate = session.submit(faults, gate_factory, gate_opts);

        std::atomic<int> shard_events{0};
        std::atomic<int> terminal_events{0};
        auto victim = session.submit(
            faults, factory, opts, [&](const core::ShardEvent& e) {
                (e.terminal ? terminal_events : shard_events)++;
            });

        std::thread releaser(
            [&] { release.store(true, std::memory_order_release); });
        (void)victim.cancel();
        releaser.join();

        (void)gate.wait();
        const auto& result = victim.wait();
        EXPECT_EQ(terminal_events.load(), 1) << "iteration " << iter;
        EXPECT_EQ(result.canceled, shard_events.load() != 2)
            << "iteration " << iter << ": " << shard_events.load()
            << " shard events";
        if (!result.canceled) {
            const auto& full =
                session.submit(faults, factory, opts).wait();
            EXPECT_EQ(result.detected, full.detected) << "iteration " << iter;
        }
    }
}

// The CostModel must never learn from a canceled shard: a partial
// engine run's wall time covers an unknown fraction of the work, so
// feeding it into the EWMA would poison every subsequent partition.
// Campaign-level regression for the scheduler's `completed` gate (the
// unit-level guard lives in CostModel.EwmaMoves...).
TEST(CostModel, CanceledShardsAreNeverLearnedByTheScheduler) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);

    core::Session session(*design, {.num_threads = 1});

    // Gate that also reports when the engine has actually entered the
    // stimulus: the cancel below provably lands on a *running* engine, and
    // the partial run still accumulates real wall time behind the gate.
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    class StartedGate final : public sim::Stimulus {
      public:
        StartedGate(std::unique_ptr<sim::Stimulus> inner,
                    std::atomic<bool>& started, std::atomic<bool>& release)
            : inner_(std::move(inner)),
              started_(&started),
              release_(&release) {}
        void bind(const rtl::Design& design) override {
            inner_->bind(design);
        }
        [[nodiscard]] std::string clock_name() const override {
            return inner_->clock_name();
        }
        [[nodiscard]] uint32_t num_cycles() const override {
            return inner_->num_cycles();
        }
        void initialize(sim::DriveHandle& h) override {
            started_->store(true, std::memory_order_release);
            while (!release_->load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            inner_->initialize(h);
        }
        void apply(uint32_t cycle, sim::DriveHandle& h) override {
            inner_->apply(cycle, h);
        }

      private:
        std::unique_ptr<sim::Stimulus> inner_;
        std::atomic<bool>* started_;
        std::atomic<bool>* release_;
    };
    auto factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<StartedGate>(
            suite::make_stimulus(b, b.test_cycles), started, release);
    };
    CampaignOptions opts;
    opts.num_shards = 1;
    auto handle = session.submit(faults, factory, opts);
    while (!started.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(handle.cancel());
    release.store(true, std::memory_order_release);
    const auto& result = handle.wait();
    EXPECT_TRUE(result.canceled);
    EXPECT_EQ(session.scheduler().cost_model().observations(), 0u)
        << "a canceled shard's partial wall time leaked into the EWMA";

    // Positive control: the same campaign left alone is learned from.
    auto plain = [&] { return suite::make_stimulus(b, b.test_cycles); };
    EXPECT_FALSE(session.submit(faults, plain, opts).wait().canceled);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (session.scheduler().cost_model().observations() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    EXPECT_GT(session.scheduler().cost_model().observations(), 0u);
}

// --- drain / submit race ----------------------------------------------------

// A submit() that lands while drain() is mid-wait must either be admitted
// and run to completion or refuse cleanly — never be dropped, wedge the
// drainer, or surface a canceled result. The gate pins the single worker
// so the drain is reliably in its wait when the racing submit arrives;
// drain() must then also wait out the newly admitted campaign.
TEST(SchedulerShutdown, SubmitDuringDrainAdmitsAndCompletes) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);

    core::CampaignResult ref;
    {
        core::Session ref_session(compiled, {.num_threads = 1});
        auto stim = suite::make_stimulus(b, b.test_cycles);
        ref = ref_session.run(faults, *stim, {});
    }

    core::Session session(compiled, {.num_threads = 1});
    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };
    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(faults, gate_factory, gate_opts);

    std::atomic<bool> drained{false};
    std::thread drainer([&] {
        session.scheduler().drain();
        drained.store(true, std::memory_order_release);
    });
    // Give the drainer time to enter its wait (the gate holds it there —
    // the sleep only makes the intended interleaving overwhelmingly
    // likely; the invariant must hold under any interleaving).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_FALSE(drained.load(std::memory_order_acquire));

    auto plain = [&] { return suite::make_stimulus(b, b.test_cycles); };
    CampaignOptions opts;
    opts.num_shards = 2;
    auto racer = session.submit(faults, plain, opts);

    release.store(true, std::memory_order_release);
    const auto& result = racer.wait();
    EXPECT_FALSE(result.canceled);
    EXPECT_EQ(result.detected, ref.detected);
    EXPECT_EQ(result.num_detected, ref.num_detected);
    EXPECT_FALSE(gate.wait().canceled);

    drainer.join();
    EXPECT_TRUE(drained.load());
}

}  // namespace
}  // namespace eraser
