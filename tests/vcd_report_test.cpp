// Tests for the VCD tracer and the campaign report writers.
// This suite deliberately exercises the deprecated pre-Session free
// functions as compatibility coverage for the Session wrappers.
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include <sstream>

#include "fault/report.h"
#include "frontend/compile.h"
#include "sim/vcd.h"
#include "suite/random_stimulus.h"

namespace eraser {
namespace {

TEST(Vcd, HeaderAndChangesOnly) {
    auto design = frontend::compile(R"(
        module top(input clk, input rst, output reg [3:0] q);
          always @(posedge clk) if (rst) q <= 0; else q <= q + 1;
        endmodule
    )",
                                    "top");
    sim::SimEngine eng(*design);
    eng.reset();

    std::ostringstream out;
    sim::VcdWriter vcd(out, *design,
                       {design->signal_id("clk"), design->signal_id("q")});
    const auto clk = design->signal_id("clk");
    eng.poke(design->signal_id("rst"), 0);
    vcd.sample(eng, 0);
    for (uint64_t t = 1; t <= 3; ++t) {
        eng.tick(clk);
        vcd.sample(eng, t * 10);
    }
    const std::string text = out.str();
    EXPECT_NE(text.find("$timescale"), std::string::npos);
    EXPECT_NE(text.find("$var wire 1"), std::string::npos);
    EXPECT_NE(text.find("$var wire 4"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    // q counts 1, 2, 3 -> binary dumps present.
    EXPECT_NE(text.find("b0001"), std::string::npos);
    EXPECT_NE(text.find("b0011"), std::string::npos);
    // A second sample with no changes emits no timestamp.
    const size_t len_before = out.str().size();
    vcd.sample(eng, 40);
    EXPECT_EQ(out.str().size(), len_before);
}

TEST(Vcd, DotsInHierarchicalNamesAreSanitized) {
    auto design = frontend::compile(R"(
        module leaf(input a, output y); assign y = a; endmodule
        module top(input a, output y);
          wire mid;
          leaf u0 (.a(a), .y(mid));
          leaf u1 (.a(mid), .y(y));
        endmodule
    )",
                                    "top");
    std::ostringstream out;
    sim::VcdWriter vcd(out, *design);
    EXPECT_NE(out.str().find("u0_a"), std::string::npos);
    EXPECT_EQ(out.str().find("u0.a"), std::string::npos);
}

TEST(Reports, TextAndCsvContainVerdicts) {
    auto design = frontend::compile(R"(
        module top(input clk, input [3:0] d, output reg [3:0] q);
          always @(posedge clk) q <= d;
        endmodule
    )",
                                    "top");
    const auto faults = fault::generate_faults(*design, {});
    suite::RandomStimulus::Config cfg;
    cfg.cycles = 50;
    suite::RandomStimulus stim(cfg);
    const auto result = core::run_concurrent_campaign(*design, faults, stim,
                                                      {});

    std::ostringstream text;
    fault::write_text_report(text, *design, faults, result);
    EXPECT_NE(text.str().find("coverage"), std::string::npos);
    EXPECT_NE(text.str().find("detected: "), std::string::npos);

    std::ostringstream csv;
    fault::write_csv_report(csv, *design, faults, result);
    // Header + one row per fault.
    size_t lines = 0;
    for (char c : csv.str()) lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, faults.size() + 1);
    EXPECT_NE(csv.str().find("q,0,0,1"), std::string::npos);
}

}  // namespace
}  // namespace eraser
