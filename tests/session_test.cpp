// The Session API contract (compile-once artifacts, async submission,
// streaming results):
//
//  * a whole mode x shard-count configuration sweep through one Session
//    builds the CompiledDesign exactly once (asserted via the builds()
//    instrumentation counter) and every configuration's detection bitmap is
//    bit-identical to a per-configuration legacy run_sharded_campaign call;
//  * repeated submission onto the same Session never drifts;
//  * cancellation stops promptly and reports partial progress;
//  * submit() is safe from concurrent threads;
//  * the ShardObserver streams every shard exactly once, and reassembling
//    the streamed slices reproduces the merged bitmap.
//
// The legacy free functions are called deliberately as the comparison
// baseline (they are the compat surface the Session wrappers preserve).
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "eraser/eraser.h"
#include "suite/random_stimulus.h"
#include "suite/suite.h"

namespace eraser {
namespace {

std::vector<fault::Fault> ci_faults(const rtl::Design& design) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = 60;
    fopts.sample_seed = 42;
    return fault::generate_faults(design, fopts);
}

// --- compile-once sweep (the PR's acceptance criterion) ---------------------

// A fig6-style sweep — every RedundancyMode crossed with several shard
// counts — submitted to ONE Session must compile exactly once and match a
// fresh legacy run_sharded_campaign per configuration, bit for bit.
TEST(SessionSweep, SweepCompilesOnceAndMatchesLegacyPerConfig) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    ASSERT_FALSE(faults.empty());
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    const uint64_t builds_before = core::CompiledDesign::builds();
    core::Session session(*design, {.num_threads = 2});

    struct Config {
        core::RedundancyMode mode;
        uint32_t shards;
    };
    std::vector<Config> sweep;
    for (const auto mode :
         {core::RedundancyMode::None, core::RedundancyMode::Explicit,
          core::RedundancyMode::Full}) {
        for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
            sweep.push_back({mode, shards});
        }
    }

    std::vector<core::CampaignResult> session_results;
    for (const Config& cfg : sweep) {
        core::CampaignOptions opts;
        opts.engine.mode = cfg.mode;
        opts.num_shards = cfg.shards;
        session_results.push_back(
            session.submit(faults, factory, opts).wait());
        EXPECT_EQ(session_results.back().compile_seconds, 0.0)
            << "session campaigns must not pay compilation";
    }
    // The whole sweep (12 configurations) compiled the design exactly once.
    EXPECT_EQ(core::CompiledDesign::builds(), builds_before + 1);

    for (size_t i = 0; i < sweep.size(); ++i) {
        core::CampaignOptions opts;
        opts.engine.mode = sweep[i].mode;
        opts.num_shards = sweep[i].shards;
        opts.num_threads = 2;
        const auto legacy =
            core::run_sharded_campaign(*design, faults, factory, opts);
        EXPECT_EQ(session_results[i].detected, legacy.detected)
            << "config " << i << " mode=" << static_cast<int>(sweep[i].mode)
            << " shards=" << sweep[i].shards;
        EXPECT_EQ(session_results[i].num_detected, legacy.num_detected);
        EXPECT_FALSE(session_results[i].canceled);
        EXPECT_GT(legacy.compile_seconds, 0.0)
            << "legacy wrappers pay compilation per call";
    }
}

// Same-session repeated submission of the same configuration is stable,
// and Session::run (blocking path) matches the legacy single-threaded
// entry point bit for bit.
TEST(SessionSweep, RepeatedSubmissionAndBlockingRunAreBitIdentical) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    auto legacy_stim = suite::make_stimulus(b, b.test_cycles);
    core::CampaignOptions opts;
    const auto legacy = core::run_concurrent_campaign(*design, faults,
                                                      *legacy_stim, opts);

    core::Session session(*design, {.num_threads = 3});
    auto run_stim = suite::make_stimulus(b, b.test_cycles);
    const auto blocking = session.run(faults, *run_stim, opts);
    EXPECT_EQ(blocking.detected, legacy.detected);
    EXPECT_EQ(blocking.num_detected, legacy.num_detected);

    for (int rep = 0; rep < 3; ++rep) {
        const auto again = session.submit(faults, factory, opts).wait();
        EXPECT_EQ(again.detected, legacy.detected) << "rep " << rep;
        EXPECT_DOUBLE_EQ(again.coverage_percent, legacy.coverage_percent);
    }
}

// --- cancellation -----------------------------------------------------------

// A campaign over undetectable faults and an absurdly long stimulus can
// only end through cancellation: cancel() must stop it promptly, and the
// result must be flagged canceled with shard-accurate partial progress.
TEST(SessionCancel, StopsPromptlyAndReportsPartialProgress) {
    // `dead` never reaches an output, so its faults are undetectable and
    // no engine can early-exit by detecting everything.
    auto design = frontend::compile(R"(
        module cancel_dut(input clk, input in, output reg out);
          reg dead;
          always @(posedge clk) begin
            dead <= in;
            out <= in;
          end
        endmodule
    )",
                                    "cancel_dut");
    std::vector<fault::Fault> faults;
    const rtl::SignalId dead = design->signal_id("dead");
    faults.push_back({dead, 0, false});
    faults.push_back({dead, 0, true});

    suite::RandomStimulus::Config cfg;
    cfg.cycles = 500'000'000;   // hours of simulation if not canceled
    auto factory = [&] {
        return std::make_unique<suite::RandomStimulus>(cfg);
    };

    core::Session session(*design, {.num_threads = 2});
    core::CampaignOptions opts;
    opts.num_shards = 2;
    auto handle = session.submit(faults, factory, opts);

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(handle.finished());
    EXPECT_TRUE(handle.cancel());

    const auto& result = handle.wait();   // must return promptly
    EXPECT_TRUE(result.canceled);
    EXPECT_EQ(result.num_faults, 2u);
    EXPECT_EQ(result.detected.size(), faults.size());

    const auto progress = handle.progress();
    EXPECT_TRUE(progress.finished);
    EXPECT_TRUE(progress.cancel_requested);
    EXPECT_EQ(progress.shards_total, 2u);
    EXPECT_LT(progress.shards_done, progress.shards_total);
    EXPECT_LT(progress.faults_done, result.num_faults);

    // cancel() on a finished campaign reports "too late".
    EXPECT_FALSE(handle.cancel());
}

// --- concurrent submission --------------------------------------------------

// submit() from multiple threads onto one Session interleaves safely and
// every campaign still lands on the reference verdicts.
TEST(SessionThreads, ConcurrentSubmitIsSafe) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 4});
    auto ref_stim = suite::make_stimulus(b, b.test_cycles);
    const auto ref = session.run(faults, *ref_stim, {});

    constexpr int kPerThread = 3;
    std::atomic<int> mismatches{0};
    auto submitter = [&](core::RedundancyMode mode) {
        for (int i = 0; i < kPerThread; ++i) {
            core::CampaignOptions opts;
            opts.engine.mode = mode;
            opts.num_shards = 1 + static_cast<uint32_t>(i);
            const auto r = session.submit(faults, factory, opts).wait();
            if (r.detected != ref.detected) mismatches.fetch_add(1);
        }
    };
    std::thread t1(submitter, core::RedundancyMode::Full);
    std::thread t2(submitter, core::RedundancyMode::Explicit);
    t1.join();
    t2.join();
    EXPECT_EQ(mismatches.load(), 0);
}

// --- streaming --------------------------------------------------------------

// Every shard is streamed exactly once with its verdict slice, and the
// slices reassemble into exactly the merged bitmap.
TEST(SessionObserver, StreamsEveryShardExactlyOnce) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 2});
    core::CampaignOptions opts;
    opts.num_shards = 4;

    std::vector<bool> reassembled(faults.size(), false);
    std::vector<uint32_t> seen_shards;
    uint64_t streamed_detected = 0;
    int terminal_events = 0;
    auto observer = [&](const core::ShardEvent& e) {
        if (e.terminal) {
            ++terminal_events;
            EXPECT_EQ(e.shard, core::ShardEvent::kTerminalShard);
            EXPECT_TRUE(e.global_ids.empty());
            EXPECT_TRUE(e.detected.empty());
            return;
        }
        seen_shards.push_back(e.shard);
        ASSERT_EQ(e.global_ids.size(), e.detected.size());
        for (size_t i = 0; i < e.global_ids.size(); ++i) {
            reassembled[e.global_ids[i]] = e.detected[i];
        }
        streamed_detected += e.breakdown.detected;
    };
    const auto result =
        session.submit(faults, factory, opts, observer).wait();

    EXPECT_EQ(terminal_events, 1);
    EXPECT_EQ(seen_shards.size(), result.num_shards);
    std::vector<uint32_t> sorted = seen_shards;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t s = 0; s < result.num_shards; ++s) {
        EXPECT_EQ(sorted[s], s);   // each shard exactly once
    }
    EXPECT_EQ(reassembled, result.detected);
    EXPECT_EQ(streamed_detected, result.num_detected);
}

// A throwing observer must not stall the campaign: wait() returns (no
// deadlock) and rethrows the observer's exception.
TEST(SessionObserver, ThrowingObserverSurfacesInWaitWithoutDeadlock) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    core::Session session(*design, {.num_threads = 2});
    core::CampaignOptions opts;
    opts.num_shards = 3;
    auto handle = session.submit(faults, factory, opts,
                                 [](const core::ShardEvent&) {
                                     throw std::runtime_error("observer bug");
                                 });
    EXPECT_THROW((void)handle.wait(), std::runtime_error);
    EXPECT_TRUE(handle.finished());
}

// --- scheduler-era progress/observer guarantees -----------------------------

// Four concurrent submitters with mixed priorities, plus one campaign
// canceled mid-flight: CampaignProgress counters must never regress (the
// monotone contract a polling UI depends on), shards_total must be stable
// from submission, and every completed shard must stream to its observer
// exactly once.
TEST(SessionScheduler, ProgressMonotoneAndObserverExactlyOnceUnderLoad) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    constexpr uint32_t kShards = 5;
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 2;
    core::Session session(*design, {.num_threads = 4});

    struct Tracked {
        core::CampaignHandle handle;
        std::array<std::atomic<int>, kShards> shard_events{};
    };
    std::vector<std::unique_ptr<Tracked>> tracked;
    std::mutex tracked_mu;
    std::atomic<bool> done{false};
    std::atomic<int> monotonic_violations{0};

    // Poller: progress snapshots of every known campaign must be monotone.
    std::thread poller([&] {
        std::vector<std::pair<const Tracked*, core::CampaignProgress>> last;
        while (!done.load()) {
            {
                std::lock_guard<std::mutex> lock(tracked_mu);
                for (const auto& t : tracked) {
                    bool known = false;
                    for (auto& [ptr, prev] : last) {
                        if (ptr != t.get()) continue;
                        known = true;
                        const auto p = t->handle.progress();
                        if (p.shards_total != prev.shards_total ||
                            p.shards_done < prev.shards_done ||
                            p.faults_done < prev.faults_done ||
                            p.detected_so_far < prev.detected_so_far ||
                            (prev.finished && !p.finished) ||
                            (prev.cancel_requested && !p.cancel_requested)) {
                            monotonic_violations.fetch_add(1);
                        }
                        prev = p;
                    }
                    if (!known) {
                        last.emplace_back(t.get(), t->handle.progress());
                    }
                }
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    const core::Priority priorities[] = {core::Priority::Low,
                                         core::Priority::Normal,
                                         core::Priority::High};
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int i = 0; i < kPerThread; ++i) {
                auto t = std::make_unique<Tracked>();
                Tracked* raw = t.get();
                core::CampaignOptions opts;
                opts.num_shards = kShards;
                opts.priority = priorities[(s + i) % 3];
                opts.max_workers = 1 + static_cast<uint32_t>(s % 3);
                auto handle = session.submit(
                    faults, factory, opts, [raw](const core::ShardEvent& e) {
                        if (e.terminal) return;
                        raw->shard_events[e.shard].fetch_add(1);
                    });
                raw->handle = handle;
                {
                    std::lock_guard<std::mutex> lock(tracked_mu);
                    tracked.push_back(std::move(t));
                }
                // One campaign per submitter gets canceled mid-flight.
                if (i == 0 && s == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                    (void)handle.cancel();
                }
                (void)handle.wait();
            }
        });
    }
    for (auto& t : submitters) t.join();
    done.store(true);
    poller.join();

    EXPECT_EQ(monotonic_violations.load(), 0);
    std::lock_guard<std::mutex> lock(tracked_mu);
    ASSERT_EQ(tracked.size(),
              static_cast<size_t>(kSubmitters * kPerThread));
    for (const auto& t : tracked) {
        const auto progress = t->handle.progress();
        EXPECT_TRUE(progress.finished);
        EXPECT_EQ(progress.shards_total, kShards);
        uint32_t streamed = 0;
        for (const auto& count : t->shard_events) {
            EXPECT_LE(count.load(), 1) << "a shard streamed twice";
            streamed += static_cast<uint32_t>(count.load());
        }
        // Completed shards stream exactly once; canceled campaigns stream
        // only the shards that completed before the cancel landed.
        EXPECT_EQ(streamed, progress.shards_done);
        if (!t->handle.wait().canceled) {
            EXPECT_EQ(streamed, kShards);
        }
    }
}

// --- serial baseline compile-once overloads ---------------------------------

// The CompiledDesign overloads of the serial baselines are bit-identical
// to the per-call-compiling legacy ones (they share the engine, only the
// program ownership differs).
TEST(SessionSerial, CompiledOverloadMatchesLegacySerial) {
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);

    for (const auto mode : {sim::SchedulingMode::EventDriven,
                            sim::SchedulingMode::Levelized}) {
        baseline::SerialOptions opts;
        opts.mode = mode;
        auto stim1 = suite::make_stimulus(b, b.test_cycles);
        const auto legacy =
            baseline::run_serial_campaign(*design, faults, *stim1, opts);
        auto stim2 = suite::make_stimulus(b, b.test_cycles);
        const auto shared =
            baseline::run_serial_campaign(*compiled, faults, *stim2, opts);
        EXPECT_EQ(shared.detected, legacy.detected);
        EXPECT_EQ(shared.num_detected, legacy.num_detected);
    }
}

}  // namespace
}  // namespace eraser
