// The durable campaign journal contract (eraser/journal.h):
//
//  * record round trip: Admit/Unit/Complete survive append -> replay with
//    campaign ids unique across file reopens;
//  * a torn tail (partial frame from a crash or disk fault) stops replay
//    cleanly and is truncated away on reopen-for-append;
//  * crash resume: a journal truncated after K unit records recovers to a
//    bit-identical bitmap while re-executing strictly fewer faults than
//    the campaign total;
//  * Session::shutdown(Checkpoint) stops at unit boundaries, leaves the
//    campaign resumable, and Session::recover completes it bit-identically
//    (then refuses to resurrect it once Complete lands);
//  * injected disk faults (ENOSPC, short writes, fsync failure) degrade to
//    journaling-disabled-with-counter — never a crash, a corrupted file,
//    or a changed verdict;
//  * VerdictCache::save() is fault-injectable through the same seam: a
//    failed save leaves no temp droppings, and orphaned *.tmp files from a
//    crashed save are cleaned up on load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eraser/eraser.h"
#include "eraser/journal.h"
#include "eraser/verdict_cache.h"
#include "suite/suite.h"
#include "util/diagnostics.h"
#include "util/fileio.h"
#include "util/wire.h"

namespace eraser {
namespace {

using core::CampaignJournal;
using core::CampaignOptions;
using core::FaultBatching;
using core::JournalCampaign;
using core::JournalOptions;

std::vector<fault::Fault> ci_faults(const rtl::Design& design,
                                    uint32_t sample = 60) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = sample;
    fopts.sample_seed = 42;
    return fault::generate_faults(design, fopts);
}

std::string temp_journal(const char* name) {
    return ::testing::TempDir() + name;
}

bool file_exists(const std::string& path) {
    return std::ifstream(path, std::ios::binary).good();
}

std::vector<uint8_t> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<uint8_t>& bytes,
          size_t len) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(len));
}

/// Byte offset of a journal prefix holding the header, every Admit, and
/// exactly the first `units` Unit records — the file a crash would leave
/// behind mid-campaign. Stops before any Complete record.
size_t prefix_after_units(const std::vector<uint8_t>& buf, uint32_t units) {
    size_t pos = 0;
    std::vector<uint8_t> payload;
    if (!util::next_frame(buf, pos, payload)) return 0;   // header frame
    size_t valid = pos;
    uint32_t kept = 0;
    while (util::next_frame(buf, pos, payload)) {
        if (payload.empty() || payload[0] == 3) break;    // Complete
        if (payload[0] == 2) {                            // Unit
            if (kept == units) break;
            ++kept;
        }
        valid = pos;
    }
    EXPECT_EQ(kept, units) << "journal held fewer unit records than asked";
    return valid;
}

/// Faults actually simulated (executed shards only — replayed units
/// contribute no ShardBreakdown).
uint64_t executed_faults(const core::CampaignResult& result) {
    uint64_t n = 0;
    for (const core::ShardBreakdown& s : result.stats.shards) n += s.faults;
    return n;
}

// --- record round trip ------------------------------------------------------

TEST(JournalRoundTrip, RecordsSurviveAppendAndReplay) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design, 10);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);
    const std::string path = temp_journal("roundtrip.journal");
    std::remove(path.c_str());

    CampaignOptions opts;
    opts.num_shards = 3;
    opts.priority = core::Priority::High;
    opts.weight = 7;

    uint64_t id = 0;
    {
        JournalOptions jopts;
        jopts.path = path;
        CampaignJournal j(jopts);
        ASSERT_TRUE(j.enabled());
        id = j.append_admission(0xD351C9ull, stim, opts, faults);
        ASSERT_NE(id, 0u);

        core::ShardBreakdown bd;
        bd.wall_seconds = 0.25;
        j.append_unit(id, 0, {0, 2, 5}, {true, false, true}, bd);
        j.append_unit(id, 1, {1, 3, 4}, {false, false, true}, bd);
        const auto stats = j.stats();
        EXPECT_EQ(stats.appends, 3u);   // admit + 2 units (header uncounted)
        EXPECT_EQ(stats.append_failures, 0u);
    }

    auto recs = CampaignJournal::replay(path);
    ASSERT_EQ(recs.size(), 1u);
    const JournalCampaign& rec = recs[0];
    EXPECT_EQ(rec.campaign_id, id);
    EXPECT_EQ(rec.design_hash, 0xD351C9ull);
    EXPECT_EQ(rec.stimulus.kind, stim.kind);
    EXPECT_EQ(rec.stimulus.payload, stim.payload);
    EXPECT_EQ(rec.options.num_shards, 3u);
    EXPECT_EQ(rec.options.priority, core::Priority::High);
    EXPECT_EQ(rec.options.weight, 7u);
    ASSERT_EQ(rec.faults.size(), faults.size());
    EXPECT_EQ(rec.faults[0].sig, faults[0].sig);
    EXPECT_EQ(rec.faults[0].bit, faults[0].bit);
    EXPECT_EQ(rec.faults[0].stuck_one, faults[0].stuck_one);
    EXPECT_FALSE(rec.complete);
    EXPECT_EQ(rec.units_replayed, 2u);
    const std::vector<bool> want_done = {true,  true,  true, true, true,
                                         true,  false, false, false, false};
    const std::vector<bool> want_verdicts = {true, false, false, false, true,
                                             true, false, false, false, false};
    EXPECT_EQ(rec.unit_done, want_done);
    EXPECT_EQ(rec.verdicts, want_verdicts);

    // Reopen for append: ids stay unique across incarnations, and a
    // Complete record retires the campaign for recovery.
    {
        JournalOptions jopts;
        jopts.path = path;
        CampaignJournal j(jopts);
        const uint64_t id2 = j.append_admission(0xD351C9ull, stim, opts,
                                                faults);
        EXPECT_GT(id2, id);
        j.append_complete(id);
    }
    recs = CampaignJournal::replay(path);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_TRUE(recs[0].complete);
    EXPECT_FALSE(recs[1].complete);
}

TEST(JournalRoundTrip, TornTailToleratedAndTruncatedOnReopen) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::registry().front();
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design, 6);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);
    const std::string path = temp_journal("torn.journal");
    std::remove(path.c_str());

    {
        JournalOptions jopts;
        jopts.path = path;
        CampaignJournal j(jopts);
        ASSERT_NE(j.append_admission(1, stim, {}, faults), 0u);
    }
    const size_t intact = slurp(path).size();

    // A crash mid-write leaves a partial frame: half a record's bytes.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        const char torn[] = "\x40partial-frame-without-valid-crc";
        out.write(torn, sizeof(torn) - 1);
    }
    auto recs = CampaignJournal::replay(path);
    ASSERT_EQ(recs.size(), 1u);   // replay stops at the tear, keeps the rest

    // Reopening for append truncates the tear; the next record lands where
    // the torn bytes were and the whole file replays.
    {
        JournalOptions jopts;
        jopts.path = path;
        CampaignJournal j(jopts);
        ASSERT_TRUE(j.enabled());
        ASSERT_NE(j.append_admission(1, stim, {}, faults), 0u);
    }
    const auto after = slurp(path);
    EXPECT_GT(after.size(), intact);
    recs = CampaignJournal::replay(path);
    EXPECT_EQ(recs.size(), 2u);
}

// --- crash resume -----------------------------------------------------------

// The acceptance criterion in miniature: truncate a completed campaign's
// journal after K unit records (exactly the file a SIGKILL leaves — the
// fork/SIGKILL variant of this soak lives in bench/bench_crash.cpp),
// recover, and require a bit-identical bitmap with strictly less
// re-execution. Off batching so requested shards map 1:1 to units.
TEST(JournalRecovery, TruncatedJournalResumesBitIdentical) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);
    const std::string path = temp_journal("resume.journal");
    std::remove(path.c_str());

    CampaignOptions copts;
    copts.num_shards = 6;
    copts.engine.batching = FaultBatching::Off;

    core::CampaignResult ref;
    {
        core::Session session(compiled, {.num_threads = 2});
        ref = session.submit(faults, stim, copts).wait();
    }

    {
        JournalOptions jopts;
        jopts.path = path;
        core::SessionOptions sopts;
        sopts.num_threads = 2;
        sopts.scheduler.journal = std::make_shared<CampaignJournal>(jopts);
        core::Session session(compiled, sopts);
        const auto r = session.submit(faults, stim, copts).wait();
        ASSERT_EQ(r.detected, ref.detected);
    }

    // Keep the Admit and the first two unit records: the crash point.
    constexpr uint32_t kKeptUnits = 2;
    const auto bytes = slurp(path);
    const size_t valid = prefix_after_units(bytes, kKeptUnits);
    ASSERT_GT(valid, 0u);
    ASSERT_LT(valid, bytes.size());
    spit(path, bytes, valid);

    core::JournalOptions jopts;
    jopts.path = path;
    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.journal = std::make_shared<CampaignJournal>(jopts);
    core::Session session(compiled, sopts);
    auto handles = session.recover(path);
    ASSERT_EQ(handles.size(), 1u);
    const core::CampaignResult& res = handles[0].wait();

    EXPECT_FALSE(res.canceled);
    EXPECT_EQ(res.detected, ref.detected);
    EXPECT_EQ(res.num_detected, ref.num_detected);
    EXPECT_EQ(res.resumed_units, kKeptUnits);
    EXPECT_LT(executed_faults(res), faults.size())
        << "recovery re-executed journaled work";
    EXPECT_EQ(session.scheduler().stats().journal.replayed_units, kKeptUnits);

    // The resumed campaign appended its Complete: a second recovery must
    // not resurrect it.
    EXPECT_TRUE(session.recover(path).empty());
    std::remove(path.c_str());
}

// --- checkpoint shutdown ----------------------------------------------------

/// Delegating stimulus that sleeps ~1ms per cycle, stretching shard wall
/// time so a Checkpoint shutdown reliably lands mid-campaign.
class PacedStimulus final : public sim::Stimulus {
  public:
    explicit PacedStimulus(std::unique_ptr<sim::Stimulus> inner)
        : inner_(std::move(inner)) {}
    void bind(const rtl::Design& design) override { inner_->bind(design); }
    [[nodiscard]] std::string clock_name() const override {
        return inner_->clock_name();
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return inner_->num_cycles();
    }
    void initialize(sim::DriveHandle& h) override { inner_->initialize(h); }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        inner_->apply(cycle, h);
    }

  private:
    std::unique_ptr<sim::Stimulus> inner_;
};

/// Registers the "paced" spec kind (payload = benchmark name): the
/// journalable form of PacedStimulus. Same sequence as the suite stimulus,
/// just slower — verdicts are unchanged.
core::StimulusSpec paced_stimulus(const suite::Benchmark& b) {
    core::register_stimulus_kind(
        "paced", [](std::span<const uint8_t> payload) {
            const std::string name(payload.begin(), payload.end());
            const suite::Benchmark& bench = suite::find_benchmark(name);
            return std::make_unique<PacedStimulus>(
                suite::make_stimulus(bench, bench.test_cycles));
        });
    core::StimulusSpec spec;
    spec.kind = "paced";
    spec.payload.assign(b.name.begin(), b.name.end());
    return spec;
}

TEST(JournalRecovery, CheckpointShutdownLeavesResumableCampaign) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim = paced_stimulus(b);
    const std::string path = temp_journal("checkpoint.journal");
    std::remove(path.c_str());

    CampaignOptions copts;
    copts.num_shards = 8;
    copts.engine.batching = FaultBatching::Off;

    core::CampaignResult ref;
    {
        core::Session session(compiled, {.num_threads = 2});
        ref = session.submit(faults, stim, copts).wait();
    }

    {
        JournalOptions jopts;
        jopts.path = path;
        core::SessionOptions sopts;
        sopts.num_threads = 1;   // one unit in flight at a time
        sopts.scheduler.journal = std::make_shared<CampaignJournal>(jopts);
        core::Session session(compiled, sopts);
        auto handle = session.submit(faults, stim, copts);
        while (handle.progress().shards_done < 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        session.shutdown(core::ShutdownMode::Checkpoint);
        const auto& partial = handle.wait();
        EXPECT_TRUE(partial.canceled) << "checkpoint landed after the last "
                                         "unit; campaign was not partial";
        EXPECT_GE(partial.stats.shards.size(), 1u);

        // Submissions after shutdown are refused loudly.
        EXPECT_THROW((void)session.submit(faults, stim, copts), SimError);
    }

    // Two campaigns in the log: the checkpointed one (no Complete — it is
    // resumable) and the refused one, which was journaled at admission but
    // tombstoned with a Complete so recovery cannot resurrect work the
    // caller was told did not run.
    auto recs = CampaignJournal::replay(path);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_FALSE(recs[0].complete);
    EXPECT_GE(recs[0].units_replayed, 1u);
    EXPECT_TRUE(recs[1].complete) << "refused submission left resumable";
    EXPECT_EQ(recs[1].units_replayed, 0u);

    core::JournalOptions jopts;
    jopts.path = path;
    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.journal = std::make_shared<CampaignJournal>(jopts);
    core::Session session(compiled, sopts);
    auto handles = session.recover(path);
    ASSERT_EQ(handles.size(), 1u);
    const auto& res = handles[0].wait();
    EXPECT_FALSE(res.canceled);
    EXPECT_EQ(res.detected, ref.detected);
    EXPECT_GE(res.resumed_units, 1u);
    EXPECT_LT(executed_faults(res), faults.size());
    EXPECT_TRUE(session.recover(path).empty());
    std::remove(path.c_str());
}

// --- disk-fault injection ---------------------------------------------------

struct FaultInjectionRig {
    explicit FaultInjectionRig(const char* circuit)
        : bench(suite::find_benchmark(circuit)) {
        suite::register_remote_stimuli();
        design = suite::load_design(bench);
        faults = ci_faults(*design);
        compiled = core::CompiledDesign::build(*design);
        stim = suite::remote_stimulus(bench, bench.test_cycles);
        copts.num_shards = 6;
        copts.engine.batching = FaultBatching::Off;
        core::Session session(compiled, {.num_threads = 2});
        ref = session.submit(faults, stim, copts).wait();
    }

    core::CampaignResult run_journaled(const std::string& path,
                                       util::FileIo* io,
                                       uint32_t fsync_interval,
                                       core::JournalStats* stats_out) {
        JournalOptions jopts;
        jopts.path = path;
        jopts.io = io;
        jopts.fsync_interval = fsync_interval;
        auto journal = std::make_shared<CampaignJournal>(jopts);
        core::SessionOptions sopts;
        sopts.num_threads = 2;
        sopts.scheduler.journal = journal;
        core::Session session(compiled, sopts);
        const auto result = session.submit(faults, stim, copts).wait();
        if (stats_out != nullptr) *stats_out = journal->stats();
        return result;
    }

    const suite::Benchmark& bench;
    std::unique_ptr<rtl::Design> design;
    std::vector<fault::Fault> faults;
    std::shared_ptr<const core::CompiledDesign> compiled;
    core::StimulusSpec stim;
    CampaignOptions copts;
    core::CampaignResult ref;
};

// ENOSPC mid-campaign: the journal degrades to disabled-with-counter, the
// campaign's verdicts are untouched, and the file is still replayable (at
// worst a torn tail from the honest partial write at the budget boundary).
TEST(JournalDiskFaults, EnospcDegradesToDisabledNeverCorrupts) {
    FaultInjectionRig rig("alu");
    const std::string path = temp_journal("enospc.journal");
    std::remove(path.c_str());

    util::FaultyFileIoOptions fopts;
    fopts.budget_bytes = 400;   // runs out somewhere in the record stream
    util::FaultyFileIo io(fopts);
    core::JournalStats stats;
    const auto result = rig.run_journaled(path, &io, 8, &stats);

    EXPECT_EQ(result.detected, rig.ref.detected)
        << "a disk fault changed verdicts";
    EXPECT_FALSE(result.canceled);
    EXPECT_TRUE(stats.disabled);
    EXPECT_GE(stats.append_failures, 1u);
    EXPECT_GE(io.enospc_failures(), 1u);
    // Whatever made it to disk replays cleanly.
    (void)CampaignJournal::replay(path);
    std::remove(path.c_str());
}

// Short writes are not errors: write_all carries on from the partial
// write, the journal stays enabled, and the file round-trips.
TEST(JournalDiskFaults, ShortWritesAreRetriedNotFatal) {
    FaultInjectionRig rig("alu");
    const std::string path = temp_journal("short.journal");
    std::remove(path.c_str());

    util::FaultyFileIoOptions fopts;
    fopts.short_write_every = 2;   // every other write delivers half
    util::FaultyFileIo io(fopts);
    core::JournalStats stats;
    const auto result = rig.run_journaled(path, &io, 8, &stats);

    EXPECT_EQ(result.detected, rig.ref.detected);
    EXPECT_FALSE(stats.disabled);
    EXPECT_EQ(stats.append_failures, 0u);
    EXPECT_GE(io.short_writes(), 1u);
    const auto recs = CampaignJournal::replay(path);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].complete);
    std::remove(path.c_str());
}

// A failed fsync disables the journal (fsyncgate: durability of everything
// since the last success is unknowable) but never crashes the campaign or
// corrupts the already-written prefix.
TEST(JournalDiskFaults, FsyncFailureDisablesJournal) {
    FaultInjectionRig rig("alu");
    const std::string path = temp_journal("fsyncfail.journal");
    std::remove(path.c_str());

    util::FaultyFileIoOptions fopts;
    fopts.fail_fsync_after = 1;   // header barrier passes, first group fails
    util::FaultyFileIo io(fopts);
    core::JournalStats stats;
    const auto result = rig.run_journaled(path, &io, 1, &stats);

    EXPECT_EQ(result.detected, rig.ref.detected);
    EXPECT_TRUE(stats.disabled);
    EXPECT_GE(stats.append_failures, 1u);
    EXPECT_GE(io.fsync_failures(), 1u);
    (void)CampaignJournal::replay(path);
    std::remove(path.c_str());
}

// --- verdict-cache durability ----------------------------------------------

// save() through a faulty seam must fail cleanly: no store file appears,
// and the temp file is removed rather than left as a dropping.
TEST(VerdictCacheDurability, FailedSaveLeavesNoDroppings) {
    const std::string store = temp_journal("faulty.store");
    std::remove(store.c_str());
    std::remove((store + ".tmp").c_str());

    for (const bool rename_fault : {true, false}) {
        util::FaultyFileIoOptions fopts;
        if (rename_fault) {
            fopts.fail_rename = true;
        } else {
            fopts.fail_fsync_after = 0;   // first fsync (the temp file) fails
        }
        util::FaultyFileIo io(fopts);
        core::VerdictCacheOptions vopts;
        vopts.store_path = store;
        vopts.io = &io;
        core::VerdictCache cache(vopts);
        cache.store_worker_overhead(9999, 1.0);   // something to persist
        EXPECT_FALSE(cache.flush())
            << (rename_fault ? "rename" : "fsync") << " fault not surfaced";
        EXPECT_FALSE(file_exists(store));
        EXPECT_FALSE(file_exists(store + ".tmp"))
            << "failed save left a temp dropping";
    }

    // Control: the real seam persists and loads warm.
    core::VerdictCacheOptions vopts;
    vopts.store_path = store;
    {
        core::VerdictCache cache(vopts);
        cache.store_worker_overhead(9999, 1.0);
        EXPECT_TRUE(cache.flush());
    }
    EXPECT_TRUE(file_exists(store));
    core::VerdictCache warm(vopts);
    EXPECT_TRUE(warm.stats().warm);
    std::remove(store.c_str());
}

// An orphaned *.tmp from a crash mid-save is cleaned up by the next load.
TEST(VerdictCacheDurability, OrphanedTempCleanedUpOnLoad) {
    const std::string store = temp_journal("orphan.store");
    std::remove(store.c_str());
    const std::string orphan = store + ".tmp";
    {
        std::ofstream out(orphan, std::ios::binary);
        out << "half-written store from a dead process";
    }
    ASSERT_TRUE(file_exists(orphan));

    core::VerdictCacheOptions vopts;
    vopts.store_path = store;
    core::VerdictCache cache(vopts);   // loads (cold) and sweeps the orphan
    EXPECT_FALSE(file_exists(orphan));
    std::remove(store.c_str());
}

}  // namespace
}  // namespace eraser
