// Good-simulation tests: event-driven and levelized engines on circuits with
// known behaviour, including NBA timing, edge semantics, memories, and
// forces.
#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "sim/engine.h"
#include "util/diagnostics.h"

namespace eraser {
namespace {

using sim::SchedulingMode;
using sim::SimEngine;

class BothModes : public ::testing::TestWithParam<SchedulingMode> {};

INSTANTIATE_TEST_SUITE_P(Engines, BothModes,
                         ::testing::Values(SchedulingMode::EventDriven,
                                           SchedulingMode::Levelized),
                         [](const auto& info) {
                             return info.param == SchedulingMode::EventDriven
                                        ? "Event"
                                        : "Levelized";
                         });

TEST_P(BothModes, CombinationalAdder) {
    auto design = frontend::compile(R"(
        module top(input [7:0] a, input [7:0] b, output [7:0] y);
          assign y = a + b;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    eng.poke(design->signal_id("a"), 30);
    eng.poke(design->signal_id("b"), 12);
    eng.settle();
    EXPECT_EQ(eng.peek(design->signal_id("y")).bits(), 42u);
}

TEST_P(BothModes, CounterWithSyncReset) {
    auto design = frontend::compile(R"(
        module top(input clk, input rst, output reg [7:0] cnt);
          always @(posedge clk)
            if (rst) cnt <= 0;
            else cnt <= cnt + 1;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    const auto clk = design->signal_id("clk");
    const auto rst = design->signal_id("rst");
    const auto cnt = design->signal_id("cnt");
    eng.reset();
    eng.poke(rst, 1);
    eng.tick(clk);
    EXPECT_EQ(eng.peek(cnt).bits(), 0u);
    eng.poke(rst, 0);
    for (int i = 0; i < 5; ++i) eng.tick(clk);
    EXPECT_EQ(eng.peek(cnt).bits(), 5u);
}

TEST_P(BothModes, NonblockingSwapIsSimultaneous) {
    auto design = frontend::compile(R"(
        module top(input clk, input load, input [7:0] a0, input [7:0] b0,
                   output reg [7:0] a, output reg [7:0] b);
          always @(posedge clk)
            if (load) begin a <= a0; b <= b0; end
            else begin a <= b; b <= a; end
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    const auto clk = design->signal_id("clk");
    eng.reset();
    eng.poke(design->signal_id("load"), 1);
    eng.poke(design->signal_id("a0"), 11);
    eng.poke(design->signal_id("b0"), 22);
    eng.tick(clk);
    eng.poke(design->signal_id("load"), 0);
    eng.tick(clk);
    EXPECT_EQ(eng.peek(design->signal_id("a")).bits(), 22u);
    EXPECT_EQ(eng.peek(design->signal_id("b")).bits(), 11u);
}

TEST_P(BothModes, BlockingVsNonblockingInterplay) {
    // t is a blocking temp; q must get the doubled value in the same cycle.
    auto design = frontend::compile(R"(
        module top(input clk, input [7:0] d, output reg [7:0] q);
          reg [7:0] t;
          always @(posedge clk) begin
            t = d + 1;
            q <= t * 2;
          end
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    eng.poke(design->signal_id("d"), 4);
    eng.tick(design->signal_id("clk"));
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 10u);
}

TEST_P(BothModes, CombAlwaysFollowsInputs) {
    auto design = frontend::compile(R"(
        module top(input [3:0] s, output reg [7:0] y);
          always @(*) begin
            case (s)
              4'd0: y = 8'h11;
              4'd1: y = 8'h22;
              default: y = 8'hEE;
            endcase
          end
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    const auto s = design->signal_id("s");
    const auto y = design->signal_id("y");
    eng.poke(s, 0);
    eng.settle();
    EXPECT_EQ(eng.peek(y).bits(), 0x11u);
    eng.poke(s, 1);
    eng.settle();
    EXPECT_EQ(eng.peek(y).bits(), 0x22u);
    eng.poke(s, 7);
    eng.settle();
    EXPECT_EQ(eng.peek(y).bits(), 0xEEu);
}

TEST_P(BothModes, MemoryReadWrite) {
    auto design = frontend::compile(R"(
        module top(input clk, input we, input [3:0] addr, input [7:0] d,
                   output reg [7:0] q);
          reg [7:0] mem [0:15];
          always @(posedge clk) begin
            if (we) mem[addr] <= d;
            q <= mem[addr];
          end
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    const auto clk = design->signal_id("clk");
    eng.reset();
    eng.poke(design->signal_id("we"), 1);
    eng.poke(design->signal_id("addr"), 3);
    eng.poke(design->signal_id("d"), 99);
    eng.tick(clk);
    // Read-during-write returned the old value (NBA memory write).
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 0u);
    eng.poke(design->signal_id("we"), 0);
    eng.tick(clk);
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 99u);
    EXPECT_EQ(eng.peek_array(design->find_array("mem"), 3), 99u);
}

TEST_P(BothModes, HierarchyElaboratesAndSimulates) {
    auto design = frontend::compile(R"(
        module addsub(input [7:0] a, input [7:0] b, input sub,
                      output [7:0] y);
          assign y = sub ? (a - b) : (a + b);
        endmodule
        module top(input [7:0] a, input [7:0] b, input sub, output [7:0] y);
          addsub u0 (.a(a), .b(b), .sub(sub), .y(y));
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    eng.poke(design->signal_id("a"), 10);
    eng.poke(design->signal_id("b"), 3);
    eng.poke(design->signal_id("sub"), 1);
    eng.settle();
    EXPECT_EQ(eng.peek(design->signal_id("y")).bits(), 7u);
    eng.poke(design->signal_id("sub"), 0);
    eng.settle();
    EXPECT_EQ(eng.peek(design->signal_id("y")).bits(), 13u);
}

TEST_P(BothModes, ForceBitsPinsSignal) {
    auto design = frontend::compile(R"(
        module top(input [7:0] a, output [7:0] y);
          assign y = a;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    const auto a = design->signal_id("a");
    const auto y = design->signal_id("y");
    // Stuck-at-1 on bit 2 of y.
    eng.force_bits(y, 1u << 2, 1u << 2);
    eng.poke(a, 0);
    eng.settle();
    EXPECT_EQ(eng.peek(y).bits(), 4u);
    eng.poke(a, 0xFF);
    eng.settle();
    EXPECT_EQ(eng.peek(y).bits(), 0xFFu);
    eng.release(y);
    eng.poke(a, 0);
    eng.settle();
    EXPECT_EQ(eng.peek(y).bits(), 0u);
}

TEST_P(BothModes, DerivedClockCascadesWithinTimestep) {
    // A divided clock generated by NBA must wake dependent blocks in the
    // same outer settle (standard Verilog NBA-then-reevaluate semantics).
    auto design = frontend::compile(R"(
        module top(input clk, output reg div, output reg [7:0] n);
          always @(posedge clk) div <= ~div;
          always @(posedge div) n <= n + 1;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    const auto clk = design->signal_id("clk");
    eng.reset();
    for (int i = 0; i < 6; ++i) eng.tick(clk);
    // div toggles every cycle: 3 rising edges in 6 ticks.
    EXPECT_EQ(eng.peek(design->signal_id("n")).bits(), 3u);
}

TEST_P(BothModes, InitialBlockSetsState) {
    auto design = frontend::compile(R"(
        module top(input clk, output reg [7:0] q);
          initial q = 8'd42;
          always @(posedge clk) q <= q + 1;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 42u);
    eng.tick(design->signal_id("clk"));
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 43u);
}

TEST_P(BothModes, AsyncResetViaEdge) {
    auto design = frontend::compile(R"(
        module top(input clk, input rst_n, input [7:0] d,
                   output reg [7:0] q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q <= 0;
            else q <= d;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    const auto clk = design->signal_id("clk");
    const auto rst_n = design->signal_id("rst_n");
    eng.reset();
    eng.poke(rst_n, 1);
    eng.poke(design->signal_id("d"), 55);
    eng.tick(clk);
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 55u);
    // Async reset without a clock edge.
    eng.poke(rst_n, 0);
    eng.settle();
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 0u);
}

TEST_P(BothModes, PartSelectWrites) {
    auto design = frontend::compile(R"(
        module top(input clk, input [3:0] lo, input [3:0] hi,
                   output reg [7:0] q);
          always @(posedge clk) begin
            q[3:0] <= lo;
            q[7:4] <= hi;
          end
        endmodule
    )",
                                    "top");
    SimEngine eng(*design, GetParam());
    eng.reset();
    eng.poke(design->signal_id("lo"), 0xA);
    eng.poke(design->signal_id("hi"), 0x5);
    eng.tick(design->signal_id("clk"));
    EXPECT_EQ(eng.peek(design->signal_id("q")).bits(), 0x5Au);
}

TEST(EventSim, CombinationalLoopThrows) {
    rtl::Design design;
    const auto a = design.add_signal("a", 1, rtl::SignalKind::Wire);
    const auto b = design.add_signal("b", 1, rtl::SignalKind::Wire);
    design.add_node(rtl::Op::Not, {a}, b);
    design.add_node(rtl::Op::Copy, {b}, a);
    design.finalize();
    SimEngine eng(design, SchedulingMode::EventDriven);
    EXPECT_THROW(eng.reset(), SimError);
}

TEST(EventSim, EngineCountsWork) {
    auto design = frontend::compile(R"(
        module top(input clk, input [7:0] d, output reg [7:0] q);
          always @(posedge clk) q <= d;
        endmodule
    )",
                                    "top");
    SimEngine eng(*design);
    eng.reset();
    const uint64_t before = eng.behavior_execs();
    eng.poke(design->signal_id("d"), 1);
    eng.tick(design->signal_id("clk"));
    EXPECT_GT(eng.behavior_execs(), before);
}

}  // namespace
}  // namespace eraser
