// Differential suite for bit-parallel fault batching (FaultBatching::Word):
// the batched engine must produce detection bitmaps bit-identical to the
// scalar oracle on every circuit of the benchmark suite, under every
// RedundancyMode, for fault lists whose size is not a multiple of the
// 64-lane group width, through sharded Session submission, and under
// mid-campaign cancellation. The scalar path (FaultBatching::Off) is the
// reference — it is the pre-batching engine unchanged.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "eraser/eraser.h"
#include "frontend/compile.h"
#include "suite/random_stimulus.h"
#include "suite/suite.h"

namespace eraser {
namespace {

std::vector<fault::Fault> sample_faults(const rtl::Design& design,
                                        uint32_t n, uint64_t seed = 7) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = n;
    fopts.sample_seed = seed;
    return fault::generate_faults(design, fopts);
}

core::CampaignResult run_one(core::Session& session,
                             const suite::Benchmark& b,
                             std::span<const fault::Fault> faults,
                             uint32_t cycles, core::RedundancyMode mode,
                             core::FaultBatching batching,
                             sim::InterpMode interp =
                                 sim::InterpMode::Bytecode) {
    auto stim = suite::make_stimulus(b, cycles);
    core::CampaignOptions opts;
    opts.engine.mode = mode;
    opts.engine.batching = batching;
    opts.engine.interp = interp;
    return session.run(faults, *stim, opts);
}

const char* mode_name(core::RedundancyMode m) {
    switch (m) {
        case core::RedundancyMode::None: return "None";
        case core::RedundancyMode::Explicit: return "Explicit";
        case core::RedundancyMode::Full: return "Full";
    }
    return "?";
}

// --- whole suite, every redundancy mode -------------------------------------

TEST(BatchEquivalence, AllCircuitsAllModesBitIdentical) {
    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        // 90 % 64 != 0: every circuit exercises a partial trailing group.
        const auto faults = sample_faults(*design, 90);
        ASSERT_FALSE(faults.empty()) << b.name;
        core::Session session(*design);
        for (const auto mode :
             {core::RedundancyMode::None, core::RedundancyMode::Explicit,
              core::RedundancyMode::Full}) {
            const auto scalar =
                run_one(session, b, faults, b.test_cycles, mode,
                        core::FaultBatching::Off);
            const auto batched =
                run_one(session, b, faults, b.test_cycles, mode,
                        core::FaultBatching::Word);
            EXPECT_EQ(scalar.detected, batched.detected)
                << b.name << " mode=" << mode_name(mode);
            EXPECT_EQ(scalar.num_detected, batched.num_detected)
                << b.name << " mode=" << mode_name(mode);
        }
    }
}

// --- odd group remainders ----------------------------------------------------

// Group packing must be correct at every |faults| % 64 boundary shape:
// below one group, exactly one group, one lane into the second group, and a
// large non-multiple.
TEST(BatchEquivalence, OddGroupRemainders) {
    const suite::Benchmark& b = suite::find_benchmark("riscv_mini");
    auto design = suite::load_design(b);
    core::Session session(*design);
    for (const uint32_t n : {1u, 63u, 64u, 65u, 130u, 200u}) {
        const auto faults = sample_faults(*design, n, /*seed=*/n);
        ASSERT_FALSE(faults.empty());
        const auto scalar = run_one(session, b, faults, b.test_cycles,
                                    core::RedundancyMode::Full,
                                    core::FaultBatching::Off);
        const auto batched = run_one(session, b, faults, b.test_cycles,
                                     core::RedundancyMode::Full,
                                     core::FaultBatching::Word);
        EXPECT_EQ(scalar.detected, batched.detected) << "n=" << n;
    }
}

// --- sharded submission ------------------------------------------------------

// Batched engines under the sharded Session scheduler (odd shard sizes, so
// shards end in partial groups) must reproduce the scalar single-engine
// bitmap.
TEST(BatchEquivalence, ShardedSubmitMatchesScalar) {
    const suite::Benchmark& b = suite::find_benchmark("mips_cpu");
    auto design = suite::load_design(b);
    const auto faults = sample_faults(*design, 150);
    core::Session session(*design, {.num_threads = 2});
    auto factory = [&] { return suite::make_stimulus(b, b.test_cycles); };

    const auto scalar = run_one(session, b, faults, b.test_cycles,
                                core::RedundancyMode::Full,
                                core::FaultBatching::Off);
    for (const uint32_t shards : {1u, 3u, 7u}) {
        core::CampaignOptions opts;
        opts.engine.batching = core::FaultBatching::Word;
        opts.num_shards = shards;
        const auto batched = session.submit(faults, factory, opts).wait();
        EXPECT_EQ(scalar.detected, batched.detected)
            << "shards=" << shards;
    }
}

// --- audit + tree-interpreter fallback ---------------------------------------

// The audit shadow-execution cross-check must hold under batching (no
// soundness violations), and a Word engine forced onto the tree
// interpreter (no bytecode lane pass available) still matches.
TEST(BatchEquivalence, AuditAndTreeInterp) {
    const suite::Benchmark& b = suite::find_benchmark("sodor");
    auto design = suite::load_design(b);
    const auto faults = sample_faults(*design, 80);
    core::Session session(*design);

    auto stim = suite::make_stimulus(b, b.test_cycles);
    core::CampaignOptions audit_opts;
    audit_opts.engine.batching = core::FaultBatching::Word;
    audit_opts.engine.audit = true;
    const auto audited = session.run(faults, *stim, audit_opts);
    EXPECT_EQ(audited.stats.audit_soundness_violations, 0u);

    const auto scalar = run_one(session, b, faults, b.test_cycles,
                                core::RedundancyMode::Full,
                                core::FaultBatching::Off);
    EXPECT_EQ(scalar.detected, audited.detected);

    const auto tree = run_one(session, b, faults, b.test_cycles,
                              core::RedundancyMode::Full,
                              core::FaultBatching::Word,
                              sim::InterpMode::Tree);
    EXPECT_EQ(scalar.detected, tree.detected);
}

// --- cancellation mid-campaign ----------------------------------------------

TEST(BatchEquivalence, CancellationMidCampaign) {
    // `dead` never reaches an output, so its faults are undetectable and
    // no engine can early-exit by detecting everything.
    auto design = frontend::compile(R"(
        module cancel_dut(input clk, input in, output reg out);
          reg dead;
          always @(posedge clk) begin
            dead <= in;
            out <= in;
          end
        endmodule
    )",
                                    "cancel_dut");
    std::vector<fault::Fault> faults;
    const rtl::SignalId dead = design->signal_id("dead");
    faults.push_back({dead, 0, false});
    faults.push_back({dead, 0, true});

    suite::RandomStimulus::Config cfg;
    cfg.cycles = 500'000'000;   // hours of simulation if not canceled
    auto factory = [&] {
        return std::make_unique<suite::RandomStimulus>(cfg);
    };

    core::Session session(*design, {.num_threads = 2});
    core::CampaignOptions opts;
    opts.engine.batching = core::FaultBatching::Word;
    opts.num_shards = 2;
    auto handle = session.submit(faults, factory, opts);

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(handle.finished());
    EXPECT_TRUE(handle.cancel());
    const auto& result = handle.wait();
    EXPECT_TRUE(result.canceled);
    EXPECT_EQ(result.num_faults, 2u);
}

}  // namespace
}  // namespace eraser
