// The central correctness property of the whole framework: for every fault,
// the concurrent engine (in all three redundancy modes) must agree with the
// serial force-and-compare oracle — same detected/undetected verdict, fault
// by fault. Also checks the audit soundness counter: whenever the implicit
// detector (Algorithm 1) skips an execution, the shadow execution must have
// produced exactly the good result.
// This suite deliberately exercises the deprecated pre-Session free
// functions as compatibility coverage for the Session wrappers.
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "eraser/campaign.h"
#include "fault/fault.h"
#include "frontend/compile.h"
#include "suite/random_stimulus.h"

namespace eraser {
namespace {

struct Tb {
    const char* name;
    const char* source;
    const char* top;
    const char* reset;   // "" = none
    uint32_t cycles;
};

const Tb kCircuits[] = {
    {"counter",
     R"(module top(input clk, input rst, input en, output reg [7:0] cnt);
          always @(posedge clk)
            if (rst) cnt <= 0;
            else if (en) cnt <= cnt + 1;
        endmodule)",
     "top", "rst", 60},

    {"alu_slice",
     R"(module top(input clk, input [1:0] op, input [7:0] a, input [7:0] b,
                   output reg [7:0] y, output reg carry);
          reg [8:0] t;
          always @(*) begin
            case (op)
              2'd0: t = a + b;
              2'd1: t = a - b;
              2'd2: t = {1'b0, a & b};
              default: t = {1'b0, a ^ b};
            endcase
          end
          always @(posedge clk) begin
            y <= t[7:0];
            carry <= t[8];
          end
        endmodule)",
     "top", "", 80},

    {"fsm",
     R"(module top(input clk, input rst, input go, input stop,
                   output reg [1:0] state, output reg busy);
          always @(posedge clk)
            if (rst) state <= 0;
            else begin
              case (state)
                2'd0: if (go) state <= 2'd1;
                2'd1: state <= 2'd2;
                2'd2: if (stop) state <= 2'd0;
                default: state <= 2'd0;
              endcase
            end
          always @(*) busy = state != 2'd0;
        endmodule)",
     "top", "rst", 80},

    {"memory",
     R"(module top(input clk, input we, input [2:0] waddr, input [2:0] raddr,
                   input [7:0] d, output reg [7:0] q);
          reg [7:0] mem [0:7];
          always @(posedge clk) begin
            if (we) mem[waddr] <= d;
            q <= mem[raddr];
          end
        endmodule)",
     "top", "", 80},

    {"clock_divider",
     R"(module top(input clk, input rst, output reg div2, output reg [3:0] n);
          always @(posedge clk)
            if (rst) div2 <= 0;
            else div2 <= ~div2;
          always @(posedge div2) n <= n + 1;
        endmodule)",
     "top", "rst", 60},

    {"async_reset",
     R"(module top(input clk, input rst_n, input [3:0] d,
                   output reg [3:0] q1, output reg [3:0] q2);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q1 <= 0;
            else q1 <= d;
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q2 <= 4'hF;
            else q2 <= q1;
        endmodule)",
     "top", "", 70},

    {"hierarchy",
     R"(module leaf(input [3:0] x, output [3:0] y);
          assign y = x ^ 4'b0101;
        endmodule
        module top(input clk, input [3:0] a, output reg [3:0] r);
          wire [3:0] w;
          leaf u0 (.x(a), .y(w));
          always @(posedge clk) r <= w + r;
        endmodule)",
     "top", "", 60},

    {"shift_network",
     R"(module top(input clk, input [7:0] d, input [2:0] amt, input dir,
                   output reg [7:0] q);
          wire [7:0] left = d << amt;
          wire [7:0] right = d >> amt;
          always @(posedge clk) q <= dir ? left : right;
        endmodule)",
     "top", "", 60},

    {"implicit_heavy",
     // Branch-rich block modeled after the paper's Fig. 5 example: plenty of
     // paths whose choice masks divergent inputs -> implicit redundancy.
     R"(module top(input clk, input [1:0] s, input [7:0] c, input [7:0] g,
                   input [7:0] k, input [7:0] b,
                   output reg [7:0] r, output reg [7:0] a);
          always @(posedge clk) begin
            if (s == 0) begin
              r <= c + g;
              a <= k;
            end else if (s == 1)
              r <= 0;
            else begin
              a <= 0;
              if (b == 0)
                r <= r + 1;
              else
                r <= a * r;
            end
          end
        endmodule)",
     "top", "", 90},

    {"partial_writes",
     R"(module top(input clk, input [3:0] lo, input [3:0] hi, input sel,
                   output reg [7:0] q, output [3:0] peek);
          assign peek = q[7:4];
          always @(posedge clk) begin
            if (sel) q[3:0] <= lo;
            else q[7:4] <= hi;
          end
        endmodule)",
     "top", "", 60},
};

class FaultEquivalence : public ::testing::TestWithParam<Tb> {};

INSTANTIATE_TEST_SUITE_P(Circuits, FaultEquivalence,
                         ::testing::ValuesIn(kCircuits),
                         [](const auto& info) {
                             return std::string(info.param.name);
                         });

TEST_P(FaultEquivalence, AllModesMatchSerialOracle) {
    const Tb& tb = GetParam();
    auto design = frontend::compile(tb.source, tb.top);

    fault::FaultGenOptions fopts;
    const auto faults = fault::generate_faults(*design, fopts);
    ASSERT_FALSE(faults.empty());

    suite::RandomStimulus::Config cfg;
    cfg.reset = tb.reset;
    cfg.cycles = tb.cycles;
    cfg.seed = 0xC0FFEE;
    suite::RandomStimulus stim(cfg);

    baseline::SerialOptions sopts;
    const auto oracle = run_serial_campaign(*design, faults, stim, sopts);

    for (const auto mode :
         {core::RedundancyMode::None, core::RedundancyMode::Explicit,
          core::RedundancyMode::Full}) {
        core::CampaignOptions copts;
        copts.engine.mode = mode;
        copts.engine.audit = true;
        const auto got =
            core::run_concurrent_campaign(*design, faults, stim, copts);

        EXPECT_EQ(got.num_detected, oracle.num_detected)
            << "mode=" << static_cast<int>(mode);
        for (size_t f = 0; f < faults.size(); ++f) {
            EXPECT_EQ(got.detected[f], oracle.detected[f])
                << "mode=" << static_cast<int>(mode) << " fault "
                << faults[f].str(*design);
        }
        EXPECT_EQ(got.stats.audit_soundness_violations, 0u)
            << "mode=" << static_cast<int>(mode);
    }
}

TEST_P(FaultEquivalence, LevelizedSerialMatchesEventSerial) {
    const Tb& tb = GetParam();
    auto design = frontend::compile(tb.source, tb.top);
    const auto faults = fault::generate_faults(*design, {});

    suite::RandomStimulus::Config cfg;
    cfg.reset = tb.reset;
    cfg.cycles = tb.cycles;
    cfg.seed = 0xC0FFEE;
    suite::RandomStimulus stim(cfg);

    baseline::SerialOptions ev;
    ev.mode = sim::SchedulingMode::EventDriven;
    baseline::SerialOptions lv;
    lv.mode = sim::SchedulingMode::Levelized;
    const auto a = run_serial_campaign(*design, faults, stim, ev);
    const auto b = run_serial_campaign(*design, faults, stim, lv);
    ASSERT_EQ(a.detected.size(), b.detected.size());
    for (size_t f = 0; f < faults.size(); ++f) {
        EXPECT_EQ(a.detected[f], b.detected[f])
            << "fault " << faults[f].str(*design);
    }
}

TEST(FaultModel, GeneratorEnumeratesPerBit) {
    auto design = frontend::compile(
        "module top(input clk, input [3:0] d, output reg [3:0] q);"
        "always @(posedge clk) q <= d; endmodule",
        "top");
    const auto faults = fault::generate_faults(*design, {});
    // d (input excluded by default) -> only q: 4 bits x 2 polarities.
    size_t q_faults = 0;
    for (const auto& f : faults) {
        if (design->signals[f.sig].name == "q") ++q_faults;
    }
    EXPECT_EQ(q_faults, 8u);
    // clk excluded.
    for (const auto& f : faults) {
        EXPECT_NE(design->signals[f.sig].name, "clk");
    }
}

TEST(FaultModel, SamplingIsDeterministicAndStable) {
    auto design = frontend::compile(
        "module top(input clk, input [15:0] d, output reg [15:0] q);"
        "always @(posedge clk) q <= d; endmodule",
        "top");
    auto all = fault::generate_faults(*design, {});
    const auto s1 = fault::sample_faults(all, 10, 7);
    const auto s2 = fault::sample_faults(all, 10, 7);
    ASSERT_EQ(s1.size(), 10u);
    for (size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1[i].sig, s2[i].sig);
        EXPECT_EQ(s1[i].bit, s2[i].bit);
        EXPECT_EQ(s1[i].stuck_one, s2[i].stuck_one);
    }
    // Stable order: ascending (sig, bit) pairs as in the full list.
    for (size_t i = 1; i < s1.size(); ++i) {
        EXPECT_TRUE(s1[i - 1].sig < s1[i].sig ||
                    (s1[i - 1].sig == s1[i].sig &&
                     (s1[i - 1].bit < s1[i].bit ||
                      (s1[i - 1].bit == s1[i].bit &&
                       !s1[i - 1].stuck_one && s1[i].stuck_one))));
    }
}

}  // namespace
}  // namespace eraser
