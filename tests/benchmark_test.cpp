// Functional tests of the benchmark circuits themselves: the SHA-256 cores
// against the FIPS-180 "abc" vector, the CPU cores against hand-computed
// program results, and cross-engine agreement.
#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "sim/engine.h"
#include "suite/suite.h"

namespace eraser {
namespace {

using sim::SchedulingMode;
using sim::SimEngine;

std::unique_ptr<rtl::Design> load(const char* name) {
    return suite::load_design(suite::find_benchmark(name));
}

// FIPS-180 "abc" single padded block.
const uint64_t kAbcBlock[16] = {
    0x61626380, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x18,
};
const uint64_t kAbcDigest[8] = {
    0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223,
    0xb00361a3, 0x96177a9c, 0xb410ff61, 0xf20015ad,
};

void check_sha256(const char* bench) {
    auto design = load(bench);
    SimEngine eng(*design);
    const auto clk = design->signal_id("clk");
    eng.reset();
    eng.poke(design->signal_id("rst"), 1);
    eng.tick(clk);
    eng.tick(clk);
    eng.poke(design->signal_id("rst"), 0);
    // Load the block.
    for (unsigned i = 0; i < 16; ++i) {
        eng.poke(design->signal_id("block_we"), 1);
        eng.poke(design->signal_id("block_addr"), i);
        eng.poke(design->signal_id("block_data"), kAbcBlock[i]);
        eng.tick(clk);
    }
    eng.poke(design->signal_id("block_we"), 0);
    eng.poke(design->signal_id("init"), 1);
    eng.tick(clk);
    eng.poke(design->signal_id("init"), 0);
    for (int i = 0; i < 70; ++i) eng.tick(clk);
    ASSERT_EQ(eng.peek(design->signal_id("done")).bits(), 1u) << bench;
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(eng.peek(design->signal_id("digest" + std::to_string(i)))
                      .bits(),
                  kAbcDigest[i])
            << bench << " word " << i;
    }
}

TEST(Benchmarks, Sha256HvMatchesFips180) { check_sha256("sha256_hv"); }
TEST(Benchmarks, Sha256C2vMatchesFips180) { check_sha256("sha256_c2v"); }

TEST(Benchmarks, Sha256VariantsAgreeOnRandomBlocks) {
    // Same stimulus on both implementations must give identical digests —
    // the two styles are supposed to be functionally identical.
    const auto& hv = suite::find_benchmark("sha256_hv");
    const auto& c2v = suite::find_benchmark("sha256_c2v");
    auto d_hv = suite::load_design(hv);
    auto d_c2v = suite::load_design(c2v);
    auto s_hv = suite::make_stimulus(hv, 350);
    auto s_c2v = suite::make_stimulus(c2v, 350);

    SimEngine e1(*d_hv), e2(*d_c2v);

    auto run = [](SimEngine& eng, sim::Stimulus& stim,
                  const rtl::Design& design) {
        struct Handle : sim::DriveHandle {
            explicit Handle(SimEngine& e) : eng(e) {}
            void set_input(rtl::SignalId s, uint64_t v) override {
                eng.poke(s, v);
            }
            void load_array(rtl::ArrayId a,
                            std::span<const uint64_t> w) override {
                eng.load_array(a, w);
            }
            SimEngine& eng;
        } handle(eng);
        stim.bind(design);
        eng.reset();
        stim.initialize(handle);
        const auto clk = design.signal_id(stim.clock_name());
        for (uint32_t c = 0; c < stim.num_cycles(); ++c) {
            stim.apply(c, handle);
            eng.tick(clk);
        }
    };
    run(e1, *s_hv, *d_hv);
    run(e2, *s_c2v, *d_c2v);
    for (unsigned i = 0; i < 8; ++i) {
        const std::string port = "digest" + std::to_string(i);
        EXPECT_EQ(e1.peek(d_hv->signal_id(port)).bits(),
                  e2.peek(d_c2v->signal_id(port)).bits())
            << port;
    }
    // Digests must be non-trivial (blocks were processed).
    EXPECT_NE(e1.peek(d_hv->signal_id("digest0")).bits(), 0u);
}

void run_cpu(const char* bench, uint32_t cycles, const char* dbg_port,
             uint64_t expected) {
    const auto& info = suite::find_benchmark(bench);
    auto design = suite::load_design(info);
    auto stim = suite::make_stimulus(info, cycles);
    SimEngine eng(*design);
    struct Handle : sim::DriveHandle {
        explicit Handle(SimEngine& e) : eng(e) {}
        void set_input(rtl::SignalId s, uint64_t v) override {
            eng.poke(s, v);
        }
        void load_array(rtl::ArrayId a, std::span<const uint64_t> w) override {
            eng.load_array(a, w);
        }
        SimEngine& eng;
    } handle(eng);
    stim->bind(*design);
    eng.reset();
    stim->initialize(handle);
    const auto clk = design->signal_id(stim->clock_name());
    for (uint32_t c = 0; c < cycles; ++c) {
        stim->apply(c, handle);
        eng.tick(clk);
    }
    EXPECT_EQ(eng.peek(design->signal_id(dbg_port)).bits(), expected)
        << bench;
}

// The RV32 test program ends with x10 = ((fib13 << 3) - (fib13 >> 2)) |
// 0x12345000 = (1864 - 58) | 0x12345000 = 0x1234570E.
TEST(Benchmarks, SodorRunsProgram) {
    run_cpu("sodor", 200, "dbg_x10", 0x1234570E);
}
TEST(Benchmarks, RiscvMiniRunsProgram) {
    run_cpu("riscv_mini", 400, "dbg_x10", 0x1234570E);
}
TEST(Benchmarks, Picorv32RunsProgram) {
    run_cpu("picorv32", 1400, "dbg_x10", 0x1234570E);
}

// The MIPS program computes sum(1..10) = 55 into $2.
TEST(Benchmarks, MipsRunsProgram) {
    run_cpu("mips_cpu", 400, "dbg_v0", 55);
}

TEST(Benchmarks, AllCompileWithSubstance) {
    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        EXPECT_GE(design->cell_estimate(), 50u) << b.name;
        EXPECT_FALSE(design->outputs.empty()) << b.name;
        EXPECT_NE(design->find_signal("clk"), rtl::kInvalidId) << b.name;
        // Every benchmark must have at least one behavioral node.
        EXPECT_GE(design->behaviors.size(), 1u) << b.name;
    }
}

TEST(Benchmarks, AluComputes) {
    auto design = load("alu");
    SimEngine eng(*design);
    const auto clk = design->signal_id("clk");
    eng.reset();
    eng.poke(design->signal_id("rst"), 1);
    eng.tick(clk);
    eng.poke(design->signal_id("rst"), 0);
    eng.poke(design->signal_id("op"), 0);   // add
    eng.poke(design->signal_id("a"), 100);
    eng.poke(design->signal_id("b"), 23);
    eng.poke(design->signal_id("acc_en"), 1);
    eng.tick(clk);
    EXPECT_EQ(eng.peek(design->signal_id("result")).bits(), 123u);
    eng.tick(clk);
    // Accumulator: 0 + 123 (first tick result registered after second).
    EXPECT_EQ(eng.peek(design->signal_id("acc")).bits(), 246u);
}

TEST(Benchmarks, FpuAddsAndMultiplies) {
    auto design = load("fpu");
    SimEngine eng(*design);
    const auto clk = design->signal_id("clk");
    eng.reset();
    eng.poke(design->signal_id("rst"), 1);
    eng.tick(clk);
    eng.poke(design->signal_id("rst"), 0);

    auto run_op = [&](bool mul, uint32_t a, uint32_t b) {
        eng.poke(design->signal_id("valid_in"), 1);
        eng.poke(design->signal_id("op_mul"), mul ? 1 : 0);
        eng.poke(design->signal_id("a"), a);
        eng.poke(design->signal_id("b"), b);
        eng.tick(clk);
        eng.poke(design->signal_id("valid_in"), 0);
        eng.tick(clk);
        eng.tick(clk);
        EXPECT_EQ(eng.peek(design->signal_id("valid_out")).bits(), 1u);
        return eng.peek(design->signal_id("y")).bits();
    };
    // 1.5 + 2.25 = 3.75 : 0x3FC00000 + 0x40100000 = 0x40700000
    EXPECT_EQ(run_op(false, 0x3FC00000, 0x40100000), 0x40700000u);
    // 1.5 * 2.0 = 3.0 : 0x3FC00000 * 0x40000000 = 0x40400000
    EXPECT_EQ(run_op(true, 0x3FC00000, 0x40000000), 0x40400000u);
    // 2.0 + (-2.0) = 0 : 0x40000000 + 0xC0000000 = 0
    EXPECT_EQ(run_op(false, 0x40000000, 0xC0000000), 0u);
    // 0.5 * 0.5 = 0.25 : 0x3F000000^2 = 0x3E800000
    EXPECT_EQ(run_op(true, 0x3F000000, 0x3F000000), 0x3E800000u);
}

TEST(Benchmarks, ConvAccEmitsOutputs) {
    const auto& info = suite::find_benchmark("conv_acc");
    auto design = suite::load_design(info);
    auto stim = suite::make_stimulus(info, 200);
    SimEngine eng(*design);
    struct Handle : sim::DriveHandle {
        explicit Handle(SimEngine& e) : eng(e) {}
        void set_input(rtl::SignalId s, uint64_t v) override {
            eng.poke(s, v);
        }
        void load_array(rtl::ArrayId a, std::span<const uint64_t> w) override {
            eng.load_array(a, w);
        }
        SimEngine& eng;
    } handle(eng);
    stim->bind(*design);
    eng.reset();
    stim->initialize(handle);
    const auto clk = design->signal_id("clk");
    uint32_t valid_count = 0;
    for (uint32_t c = 0; c < 200; ++c) {
        stim->apply(c, handle);
        eng.tick(clk);
        valid_count += eng.peek(design->signal_id("out_valid")).bits();
    }
    EXPECT_GT(valid_count, 50u);   // windows emitted after warm-up
}

TEST(Benchmarks, ApbReadsBackWrites) {
    auto design = load("apb");
    SimEngine eng(*design);
    const auto clk = design->signal_id("clk");
    eng.reset();
    eng.poke(design->signal_id("rstn"), 0);
    eng.tick(clk);
    eng.poke(design->signal_id("rstn"), 1);
    eng.tick(clk);

    auto xact = [&](bool wr, uint64_t addr, uint64_t wdata) {
        eng.poke(design->signal_id("req"), 1);
        eng.poke(design->signal_id("wr"), wr ? 1 : 0);
        eng.poke(design->signal_id("addr"), addr);
        eng.poke(design->signal_id("wdata"), wdata);
        eng.tick(clk);
        eng.poke(design->signal_id("req"), 0);
        for (int i = 0; i < 8; ++i) {
            eng.tick(clk);
            if (eng.peek(design->signal_id("done")).bits() == 1) break;
        }
        EXPECT_EQ(eng.peek(design->signal_id("done")).bits(), 1u);
        return eng.peek(design->signal_id("rdata")).bits();
    };
    xact(true, 0x4, 0xCAFEF00D);
    EXPECT_EQ(xact(false, 0x4, 0), 0xCAFEF00Du);
}

}  // namespace
}  // namespace eraser
