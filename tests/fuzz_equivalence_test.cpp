// Property-based stack fuzzing: random circuits (generator emits Verilog,
// so the front end is in the loop), full fault lists, serial oracle vs
// concurrent engine in all redundancy modes. The strongest invariant in the
// repository: any divergence here is a real bug somewhere in the stack.
// This suite deliberately exercises the deprecated pre-Session free
// functions as compatibility coverage for the Session wrappers.
#define ERASER_ALLOW_LEGACY_API

#include <gtest/gtest.h>

#include "baseline/serial.h"
#include "eraser/campaign.h"
#include "suite/circuit_gen.h"
#include "suite/random_stimulus.h"

namespace eraser {
namespace {

struct FuzzCase {
    uint64_t seed;
    bool memory;
    bool async_reset;
    unsigned depth;
};

class FuzzEquivalence : public ::testing::TestWithParam<FuzzCase> {};

std::vector<FuzzCase> make_cases() {
    std::vector<FuzzCase> cases;
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        cases.push_back({seed, seed % 3 == 0, seed % 4 == 0,
                         2 + static_cast<unsigned>(seed % 2)});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, FuzzEquivalence,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param.seed);
                         });

TEST_P(FuzzEquivalence, SerialAndConcurrentAgree) {
    const FuzzCase& fc = GetParam();
    suite::CircuitGenOptions gopts;
    gopts.seed = fc.seed;
    gopts.use_memory = fc.memory;
    gopts.use_async_reset = fc.async_reset;
    gopts.max_stmt_depth = fc.depth;
    auto design = suite::generate_circuit(gopts);

    fault::FaultGenOptions fopts;
    fopts.sample_max = 80;
    fopts.sample_seed = fc.seed * 17;
    const auto faults = fault::generate_faults(*design, fopts);
    ASSERT_FALSE(faults.empty());

    suite::RandomStimulus::Config scfg;
    scfg.reset = "rst";
    scfg.cycles = 60;
    scfg.seed = fc.seed * 1000003;
    if (fc.async_reset) {
        // rst_n must be deasserted most of the time; pin it high and let
        // the synchronous rst handle initialization.
        scfg.constants.emplace_back("rst_n", 1);
    }
    suite::RandomStimulus stim(scfg);

    baseline::SerialOptions sopts;
    const auto oracle = run_serial_campaign(*design, faults, stim, sopts);

    for (const auto mode :
         {core::RedundancyMode::None, core::RedundancyMode::Explicit,
          core::RedundancyMode::Full}) {
        core::CampaignOptions copts;
        copts.engine.mode = mode;
        copts.engine.audit = true;
        const auto got =
            core::run_concurrent_campaign(*design, faults, stim, copts);
        ASSERT_EQ(got.detected.size(), oracle.detected.size());
        for (size_t f = 0; f < faults.size(); ++f) {
            EXPECT_EQ(got.detected[f], oracle.detected[f])
                << "seed=" << fc.seed << " mode=" << static_cast<int>(mode)
                << " fault " << faults[f].str(*design);
        }
        EXPECT_EQ(got.stats.audit_soundness_violations, 0u)
            << "seed=" << fc.seed << " mode=" << static_cast<int>(mode);
    }
}

TEST_P(FuzzEquivalence, EngineFlavoursAgreeOnGoodSim) {
    const FuzzCase& fc = GetParam();
    suite::CircuitGenOptions gopts;
    gopts.seed = fc.seed + 100;
    gopts.use_memory = fc.memory;
    gopts.max_stmt_depth = fc.depth;
    auto design = suite::generate_circuit(gopts);

    suite::RandomStimulus::Config scfg;
    scfg.reset = "rst";
    scfg.cycles = 80;
    scfg.seed = fc.seed;
    suite::RandomStimulus stim(scfg);

    const auto trace_ev = baseline::record_good_trace(
        *design, stim, sim::SchedulingMode::EventDriven);
    const auto trace_lv = baseline::record_good_trace(
        *design, stim, sim::SchedulingMode::Levelized);
    ASSERT_EQ(trace_ev.flat.size(), trace_lv.flat.size());
    for (size_t i = 0; i < trace_ev.flat.size(); ++i) {
        ASSERT_EQ(trace_ev.flat[i], trace_lv.flat[i])
            << "seed=" << fc.seed << " strobe index " << i;
    }
}

}  // namespace
}  // namespace eraser
