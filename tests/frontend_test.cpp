// Front-end tests: lexer, parser, and elaborator on representative inputs.
#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "util/diagnostics.h"

namespace eraser {
namespace {

using fe::Tok;

TEST(Lexer, NumbersAndOperators) {
    const auto toks = fe::lex("8'hFF 4'b1010 16'd1_000 42 'h10 a <= b == c");
    ASSERT_GE(toks.size(), 10u);
    EXPECT_EQ(toks[0].kind, Tok::Number);
    EXPECT_EQ(toks[0].value, 0xFFu);
    EXPECT_EQ(toks[0].width, 8u);
    EXPECT_TRUE(toks[0].sized);
    EXPECT_EQ(toks[1].value, 0b1010u);
    EXPECT_EQ(toks[2].value, 1000u);
    EXPECT_EQ(toks[3].value, 42u);
    EXPECT_FALSE(toks[3].sized);
    EXPECT_EQ(toks[4].value, 0x10u);
    EXPECT_EQ(toks[4].width, 32u);
    EXPECT_EQ(toks[6].kind, Tok::NonBlocking);
    EXPECT_EQ(toks[8].kind, Tok::EqEq);
}

TEST(Lexer, CommentsAreSkipped) {
    const auto toks = fe::lex("a // line\n /* block\n comment */ b");
    ASSERT_EQ(toks.size(), 3u);   // a, b, End
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, SizedLiteralMasksOverflow) {
    const auto toks = fe::lex("4'hFF");
    EXPECT_EQ(toks[0].value, 0xFu);
}

TEST(Lexer, RejectsBadBase) {
    EXPECT_THROW(fe::lex("8'q12"), ParseError);
}

TEST(Parser, ModulePortsAndItems) {
    const auto unit = fe::parse(R"(
        module m(input clk, input [7:0] a, b, output reg [7:0] q);
          wire [7:0] w;
          assign w = a + b;
          always @(posedge clk) q <= w;
        endmodule
    )");
    ASSERT_EQ(unit.modules.size(), 1u);
    const auto& m = unit.modules[0];
    EXPECT_EQ(m.name, "m");
    ASSERT_EQ(m.ports.size(), 4u);
    EXPECT_EQ(m.ports[1].name, "a");
    EXPECT_EQ(m.ports[2].name, "b");   // inherits [7:0] from the group
    ASSERT_TRUE(m.ports[2].msb != nullptr);
    EXPECT_TRUE(m.ports[3].is_reg);
    EXPECT_EQ(m.assigns.size(), 1u);
    ASSERT_EQ(m.always_blocks.size(), 1u);
    EXPECT_FALSE(m.always_blocks[0].is_comb);
    ASSERT_EQ(m.always_blocks[0].edges.size(), 1u);
    EXPECT_EQ(m.always_blocks[0].edges[0].signal, "clk");
}

TEST(Parser, CaseAndIf) {
    const auto unit = fe::parse(R"(
        module m(input [1:0] s, output reg [3:0] y);
          always @(*) begin
            case (s)
              2'd0: y = 4'd1;
              2'd1, 2'd2: y = 4'd2;
              default: y = 4'd0;
            endcase
            if (s == 2'd3) y = 4'd9; else y = y;
          end
        endmodule
    )");
    const auto& body = *unit.modules[0].always_blocks[0].body;
    ASSERT_EQ(body.kind, fe::PStmt::Kind::Block);
    ASSERT_EQ(body.stmts.size(), 2u);
    EXPECT_EQ(body.stmts[0]->kind, fe::PStmt::Kind::Case);
    EXPECT_EQ(body.stmts[0]->items.size(), 3u);
    EXPECT_EQ(body.stmts[0]->items[1].labels.size(), 2u);
    EXPECT_EQ(body.stmts[1]->kind, fe::PStmt::Kind::If);
}

TEST(Parser, RejectsCasez) {
    EXPECT_THROW(fe::parse(R"(
        module m(input a, output reg b);
          always @(*) casez (a) 1'b1: b = 1; endcase
        endmodule
    )"),
                 ParseError);
}

TEST(Parser, RejectsFunctions) {
    EXPECT_THROW(fe::parse(R"(
        module m(); function f; f = 0; endfunction endmodule
    )"),
                 ParseError);
}

TEST(Elab, CountsSignalsAndNodes) {
    auto design = frontend::compile(R"(
        module top(input clk, input [7:0] a, input [7:0] b,
                   output [7:0] sum);
          assign sum = a + b;
        endmodule
    )",
                                    "top");
    EXPECT_EQ(design->inputs.size(), 3u);
    EXPECT_EQ(design->outputs.size(), 1u);
    // a + b lowered to exactly one Add node driving sum.
    ASSERT_EQ(design->nodes.size(), 1u);
    EXPECT_EQ(design->nodes[0].op, rtl::Op::Add);
}

TEST(Elab, ParameterOverrideThroughHierarchy) {
    auto design = frontend::compile(R"(
        module child #(parameter W = 4) (input [7:0] x, output [7:0] y);
          assign y = x + W;
        endmodule
        module top(input [7:0] x, output [7:0] y);
          child #(.W(9)) u0 (.x(x), .y(y));
        endmodule
    )",
                                    "top");
    // The override must appear as a Const node with value 9.
    bool found = false;
    for (const auto& n : design->nodes) {
        if (n.op == rtl::Op::Const && n.cval.bits() == 9) found = true;
    }
    EXPECT_TRUE(found);
    EXPECT_NE(design->find_signal("u0.x"), rtl::kInvalidId);
}

TEST(Elab, ForLoopUnrolls) {
    auto design = frontend::compile(R"(
        module top(input clk, input [7:0] d, output reg [7:0] q);
          integer i;
          always @(posedge clk) begin
            for (i = 0; i < 4; i = i + 1)
              q[i] <= d[i];
          end
        endmodule
    )",
                                    "top");
    ASSERT_EQ(design->behaviors.size(), 1u);
    // Unrolled into 4 assignments.
    const auto& body = *design->behaviors[0].body;
    ASSERT_EQ(body.kind, rtl::Stmt::Kind::Block);
    ASSERT_EQ(body.stmts.size(), 1u);   // for -> inner block
    EXPECT_EQ(body.stmts[0]->stmts.size(), 4u);
}

TEST(Elab, RejectsWideVectors) {
    EXPECT_THROW(frontend::compile(
                     "module top(input [79:0] a, output [79:0] y);"
                     "assign y = a; endmodule",
                     "top"),
                 ElabError);
}

TEST(Elab, RejectsMultipleDrivers) {
    EXPECT_THROW(frontend::compile(R"(
        module top(input a, input b, output y);
          assign y = a;
          assign y = b;
        endmodule
    )",
                                   "top"),
                 ElabError);
}

TEST(Elab, RejectsUnknownIdentifier) {
    EXPECT_THROW(frontend::compile(
                     "module top(output y); assign y = zz; endmodule", "top"),
                 ElabError);
}

TEST(Elab, MemoriesBecomeArrays) {
    auto design = frontend::compile(R"(
        module top(input clk, input [3:0] addr, input [7:0] d,
                   input we, output reg [7:0] q);
          reg [7:0] mem [0:15];
          always @(posedge clk) begin
            if (we) mem[addr] <= d;
            q <= mem[addr];
          end
        endmodule
    )",
                                    "top");
    ASSERT_EQ(design->arrays.size(), 1u);
    EXPECT_EQ(design->arrays[0].size, 16u);
    EXPECT_EQ(design->arrays[0].width, 8u);
}

TEST(Elab, ConcatLhsAssignSplits) {
    auto design = frontend::compile(R"(
        module top(input [7:0] a, input [7:0] b, output co,
                   output [7:0] s);
          assign {co, s} = a + b;
        endmodule
    )",
                                    "top");
    // co must be driven by a Slice at offset 8, s by a Slice at offset 0.
    const rtl::SignalId co = design->signal_id("co");
    const rtl::SignalId s = design->signal_id("s");
    const auto& co_drv = design->nodes[design->signals[co].driver];
    const auto& s_drv = design->nodes[design->signals[s].driver];
    EXPECT_EQ(co_drv.op, rtl::Op::Slice);
    EXPECT_EQ(co_drv.imm, 8u);
    EXPECT_EQ(s_drv.op, rtl::Op::Slice);
    EXPECT_EQ(s_drv.imm, 0u);
}

}  // namespace
}  // namespace eraser
