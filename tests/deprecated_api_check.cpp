// Compile-only guard for the legacy-API deprecation contract (built as an
// object-library in CMake with the deprecation warning silenced; CI
// additionally compiles this TU with -Werror=deprecated-declarations and
// REQUIRES the build to fail — proving the legacy wrappers still carry
// [[deprecated]] and still exist with their original signatures).
//
// Deliberately does NOT define ERASER_ALLOW_LEGACY_API: every call below
// must trip the deprecation diagnostic.
#include "eraser/campaign.h"
#include "eraser/shard.h"

namespace {

/// References every deprecated entry point with its legacy signature.
[[maybe_unused]] void touch_legacy_api(
    const eraser::rtl::Design& design,
    std::span<const eraser::fault::Fault> faults, eraser::sim::Stimulus& stim,
    const eraser::core::StimulusFactory& factory,
    const std::vector<uint64_t>* costs) {
    const eraser::core::CampaignOptions opts;
    (void)eraser::core::run_concurrent_campaign(design, faults, stim, opts);
    (void)eraser::core::run_sharded_campaign(design, faults, factory, opts,
                                             costs);
    (void)eraser::core::make_shards(design, faults, 4,
                                    eraser::core::ShardPolicy::CostBalanced,
                                    costs);
}

}  // namespace
