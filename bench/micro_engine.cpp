// Micro/ablation benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out:
//  * divergence-list operations (the concurrent engine's hot data structure)
//  * VDG redundancy walk vs full faulty execution (why skipping pays)
//  * CFG execution vs statement interpretation (fused walk overhead)
//  * bytecode VM vs tree-walking interpreter (the PR 2 compiled hot path)
//  * event-driven vs levelized good simulation (the two serial substrates)
#include <benchmark/benchmark.h>

#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "fault/divergence.h"
#include "frontend/compile.h"
#include "sim/bcvm.h"
#include "sim/bytecode.h"
#include "sim/engine.h"
#include "sim/interp.h"
#include "suite/suite.h"
#include "util/prng.h"

namespace {

using namespace eraser;

// ---------------------------------------------------------------------------
void BM_DivergenceListSetErase(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Prng rng(7);
    for (auto _ : state) {
        fault::DivergenceList list;
        for (int i = 0; i < n; ++i) {
            list.set(static_cast<fault::FaultId>(rng.below(256)),
                     Value(rng.bits(32), 32));
        }
        for (int i = 0; i < n; ++i) {
            list.erase(static_cast<fault::FaultId>(rng.below(256)));
        }
        benchmark::DoNotOptimize(list);
    }
    state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_DivergenceListSetErase)->Arg(4)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
void BM_DivergenceListLookup(benchmark::State& state) {
    fault::DivergenceList list;
    for (int i = 0; i < 32; ++i) {
        list.set(static_cast<fault::FaultId>(i * 3), Value(i, 32));
    }
    uint32_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(list.find(q % 96));
        ++q;
    }
}
BENCHMARK(BM_DivergenceListLookup);

// ---------------------------------------------------------------------------
// VDG walk vs full execution on the paper's Fig. 5 block.
struct Fig5Fixture {
    std::unique_ptr<rtl::Design> design;
    cfg::Cfg cfg_;
    cfg::Vdg vdg_;

    Fig5Fixture() {
        design = frontend::compile(R"(
            module top(input clk, input [1:0] s, input [7:0] c,
                       input [7:0] g, input [7:0] k, input [7:0] b,
                       output reg [7:0] r, output reg [7:0] a);
              always @(posedge clk) begin
                if (s == 0) begin r <= c + g; a <= k; end
                else if (s == 1) r <= 0;
                else begin
                  a <= 0;
                  if (b == 0) r <= r + 1;
                  else r <= a * r;
                end
              end
            endmodule)",
                                   "top");
        cfg_ = cfg::Cfg::build(*design->behaviors[0].body, *design);
        vdg_ = cfg::Vdg::build(cfg_);
    }
};

class FlatCtx final : public sim::EvalContext {
  public:
    explicit FlatCtx(const rtl::Design& d) {
        vals_.resize(d.signals.size(), Value(0, 1));
        for (size_t i = 0; i < d.signals.size(); ++i) {
            vals_[i] = Value(0, d.signals[i].width);
        }
    }
    Value read_signal(rtl::SignalId s) override { return vals_[s]; }
    Value read_array(rtl::ArrayId, uint64_t) override { return Value(0, 1); }
    void write_signal(rtl::SignalId s, Value v, bool) override {
        vals_[s] = v;
    }
    void write_array(rtl::ArrayId, uint64_t, Value, bool) override {}
    std::vector<Value> vals_;
};

void BM_VdgWalk(benchmark::State& state) {
    static Fig5Fixture fx;
    FlatCtx good(*fx.design);
    FlatCtx faulty(*fx.design);
    good.write_signal(fx.design->signal_id("s"), Value(2, 2), false);
    faulty.write_signal(fx.design->signal_id("s"), Value(2, 2), false);
    faulty.write_signal(fx.design->signal_id("k"), Value(9, 8), false);
    const rtl::SignalId k = fx.design->signal_id("k");
    auto visible = [&](rtl::SignalId sig) { return sig == k; };
    auto arr_visible = [](rtl::ArrayId) { return false; };
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cfg::implicit_redundant(fx.vdg_, good, faulty, visible,
                                    arr_visible));
    }
}
BENCHMARK(BM_VdgWalk);

void BM_FullFaultyExecution(benchmark::State& state) {
    static Fig5Fixture fx;
    FlatCtx faulty(*fx.design);
    faulty.write_signal(fx.design->signal_id("s"), Value(2, 2), false);
    faulty.write_signal(fx.design->signal_id("k"), Value(9, 8), false);
    for (auto _ : state) {
        sim::exec_stmt(*fx.design->behaviors[0].body, *fx.design, faulty);
        benchmark::DoNotOptimize(faulty);
    }
}
BENCHMARK(BM_FullFaultyExecution);

// ---------------------------------------------------------------------------
void BM_CfgExecute(benchmark::State& state) {
    static Fig5Fixture fx;
    FlatCtx ctx(*fx.design);
    ctx.write_signal(fx.design->signal_id("s"), Value(0, 2), false);
    for (auto _ : state) {
        fx.cfg_.execute(*fx.design, ctx);
        benchmark::DoNotOptimize(ctx);
    }
}
BENCHMARK(BM_CfgExecute);

void BM_StmtInterpret(benchmark::State& state) {
    static Fig5Fixture fx;
    FlatCtx ctx(*fx.design);
    ctx.write_signal(fx.design->signal_id("s"), Value(0, 2), false);
    for (auto _ : state) {
        sim::exec_stmt(*fx.design->behaviors[0].body, *fx.design, ctx);
        benchmark::DoNotOptimize(ctx);
    }
}
BENCHMARK(BM_StmtInterpret);

// ---------------------------------------------------------------------------
// Bytecode VM vs the tree interpreter on the same body (the PR 2 hot path).
void BM_BytecodeExec(benchmark::State& state) {
    static Fig5Fixture fx;
    const auto& behav = fx.design->behaviors[0];
    const sim::BcProgram prog = sim::compile_stmt(
        *behav.body, *fx.design,
        {behav.blocking_writes, behav.array_writes, false});
    sim::BcVm vm(*fx.design);
    FlatCtx ctx(*fx.design);
    ctx.write_signal(fx.design->signal_id("s"), Value(0, 2), false);
    for (auto _ : state) {
        vm.exec(prog, ctx);
        benchmark::DoNotOptimize(ctx);
    }
}
BENCHMARK(BM_BytecodeExec);

// ---------------------------------------------------------------------------
// Good-simulation throughput of the two serial substrates on a real
// benchmark (cycles/second of the ALU).
void BM_GoodSimEventDriven(benchmark::State& state) {
    const auto& b = suite::find_benchmark("alu");
    static auto design = suite::load_design(b);
    auto stim = suite::make_stimulus(b, 1u << 30);
    stim->bind(*design);
    sim::SimEngine eng(*design, sim::SchedulingMode::EventDriven);
    struct H : sim::DriveHandle {
        explicit H(sim::SimEngine& e) : eng(e) {}
        void set_input(rtl::SignalId s, uint64_t v) override {
            eng.poke(s, v);
        }
        void load_array(rtl::ArrayId a, std::span<const uint64_t> w) override {
            eng.load_array(a, w);
        }
        sim::SimEngine& eng;
    } h(eng);
    eng.reset();
    stim->initialize(h);
    const auto clk = design->signal_id("clk");
    uint32_t cycle = 0;
    for (auto _ : state) {
        stim->apply(cycle++, h);
        eng.tick(clk);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoodSimEventDriven);

void BM_GoodSimLevelized(benchmark::State& state) {
    const auto& b = suite::find_benchmark("alu");
    static auto design = suite::load_design(b);
    auto stim = suite::make_stimulus(b, 1u << 30);
    stim->bind(*design);
    sim::SimEngine eng(*design, sim::SchedulingMode::Levelized);
    struct H : sim::DriveHandle {
        explicit H(sim::SimEngine& e) : eng(e) {}
        void set_input(rtl::SignalId s, uint64_t v) override {
            eng.poke(s, v);
        }
        void load_array(rtl::ArrayId a, std::span<const uint64_t> w) override {
            eng.load_array(a, w);
        }
        sim::SimEngine& eng;
    } h(eng);
    eng.reset();
    stim->initialize(h);
    const auto clk = design->signal_id("clk");
    uint32_t cycle = 0;
    for (auto _ : state) {
        stim->apply(cycle++, h);
        eng.tick(clk);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoodSimLevelized);

}  // namespace

BENCHMARK_MAIN();
