// Multi-tenant tail latency: how long a latency-sensitive campaign waits
// when it lands behind a saturating background campaign on the same
// Session. Two scheduler configurations are measured per circuit:
//
//   fifo      — fair share off, both campaigns Normal priority: strict
//               submission order, the pre-scheduler behavior (the
//               foreground's first shard waits for every already-
//               dispatched background shard).
//   priority  — the default scheduler: background Low, foreground High.
//               Workers re-pick at every shard boundary, so the foreground
//               overtakes after at most one in-flight background shard.
//
// The headline metric is the foreground's wait-to-first-shard (the minimum
// ShardBreakdown::queue_seconds across its shards); the background runs
// many small shards (16 per worker) so the FIFO wait approximates the whole
// background campaign while the priority wait approximates a single shard.
// Verdicts are checked bit-identical across both configurations — QoS must
// never move a detection bit.
//
// A tenant-count sweep follows on the first circuit: an epoch-batched
// high-priority tenant (EpochRandomStimulus, 2D (fault, epoch) packing
// chosen by the learned CostModel) lands behind 1, 2, and 4 saturating
// bulk tenants on one Session. Every row carries a "tenants" column; the
// epoch tenant's journal traffic is printed per point, and its verdicts
// must stay bit-identical to a solo serial-epoch reference at every tenant
// count — contention and packing must never move a detection bit.
//
// Machine-readable results go to BENCH_multitenant.json (schema in README
// "Benchmark result files").
//
//   $ ./build/bench/bench_multitenant [--quick] [--threads N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "eraser/journal.h"

using namespace eraser;

namespace {

/// The circuits this bench exercises: one heavy straight-line circuit and
/// two control-heavy cores keep the runtime moderate while covering both
/// shard-cost profiles. Falls back to the suite's first circuits when a
/// name is missing.
std::vector<const suite::Benchmark*> pick_circuits() {
    const std::vector<std::string> wanted = {"sha256_hv", "picorv32", "alu"};
    std::vector<const suite::Benchmark*> picked;
    for (const auto& name : wanted) {
        for (const auto& b : suite::registry()) {
            if (b.name == name) {
                picked.push_back(&b);
                break;
            }
        }
    }
    for (const auto& b : suite::registry()) {
        if (picked.size() >= 3) break;
        if (std::find(picked.begin(), picked.end(), &b) == picked.end()) {
            picked.push_back(&b);
        }
    }
    return picked;
}

double min_queue_seconds(const std::vector<core::ShardBreakdown>& shards) {
    double min_queue = -1.0;
    for (const auto& sb : shards) {
        if (min_queue < 0.0 || sb.queue_seconds < min_queue) {
            min_queue = sb.queue_seconds;
        }
    }
    return std::max(min_queue, 0.0);
}

struct ModeResult {
    double first_shard_wait = 0.0;   // foreground submit -> first engine start
    double fg_latency = 0.0;         // foreground submit -> merged result
    double bg_seconds = 0.0;
    uint32_t bg_shards = 0;          // shards the campaign actually ran
    std::vector<bool> fg_detected;
    std::vector<bool> bg_detected;
};

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Multi-tenant QoS: high-priority latency behind a saturating "
        "background campaign");
    suite::register_remote_stimuli();

    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    const uint32_t threads = scale.threads > 0 ? scale.threads : hw;

    std::printf("%-12s %-9s %10s %12s %12s %10s\n", "Benchmark", "Mode",
                "Wait(ms)", "FgLat(ms)", "BgTime(ms)", "Threads");
    bench::JsonRows json;
    std::vector<double> wait_ratios;   // fifo/priority, measurable circuits

    for (const suite::Benchmark* bp : pick_circuits()) {
        const suite::Benchmark& b = *bp;
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);
        // StimulusSpec submissions (same execution as the factory form) so
        // both campaigns are journalable: this bench doubles as the
        // journaled-under-contention observability probe (JournalStats).
        const core::StimulusSpec stim = suite::remote_stimulus(b, cycles);

        // Foreground: a small latency-sensitive slice of the fault list.
        const size_t fg_count = std::max<size_t>(1, faults.size() / 8);
        const std::span<const fault::Fault> fg_faults(faults.data(),
                                                      fg_count);

        auto compiled = core::CompiledDesign::build(*design);
        const double compile_s = compiled->compile_seconds();
        ModeResult results[2];

        for (const int mode : {0, 1}) {   // 0 = fifo, 1 = priority
            core::SessionOptions sopts;
            sopts.num_threads = threads;
            sopts.scheduler.fair_share = mode == 1;
            // Journal both campaigns: the QoS numbers then also measure the
            // write-ahead path under contention, and the per-mode
            // JournalStats line below is recovery observability on a
            // many-unit workload.
            const char* jpath = "bench_multitenant.journal";
            std::remove(jpath);
            core::JournalOptions jopts;
            jopts.path = jpath;
            sopts.scheduler.journal =
                std::make_shared<core::CampaignJournal>(jopts);
            core::Session session(compiled, sopts);

            core::CampaignOptions bg_opts;
            bg_opts.num_shards = 16 * threads;
            bg_opts.priority =
                mode == 1 ? core::Priority::Low : core::Priority::Normal;
            auto bg = session.submit(faults, stim, bg_opts);

            // Let the background actually saturate: at least one of its
            // shards must have completed (so workers are mid-campaign, not
            // mid-submission) before the foreground arrives.
            while (bg.progress().shards_done < 1) {
                std::this_thread::yield();
            }

            core::CampaignOptions fg_opts;
            fg_opts.num_shards = threads;
            fg_opts.priority =
                mode == 1 ? core::Priority::High : core::Priority::Normal;
            Stopwatch fg_watch;
            auto fg = session.submit(fg_faults, stim, fg_opts);
            const auto fg_result = fg.wait();
            ModeResult& r = results[mode];
            r.fg_latency = fg_watch.seconds();
            r.first_shard_wait = min_queue_seconds(fg_result.stats.shards);
            r.fg_detected = fg_result.detected;
            const auto bg_result = bg.wait();
            r.bg_seconds = bg_result.seconds;
            r.bg_shards = bg_result.num_shards;
            r.bg_detected = bg_result.detected;

            const char* mode_name = mode == 1 ? "priority" : "fifo";
            const core::JournalStats js = session.scheduler().stats().journal;
            std::printf("%-12s %-9s %10.2f %12.2f %12.2f %10u\n",
                        b.display.c_str(), mode_name,
                        r.first_shard_wait * 1e3, r.fg_latency * 1e3,
                        r.bg_seconds * 1e3, threads);
            std::printf("  journal: %llu appends, %llu fsyncs, "
                        "%llu append failures\n",
                        static_cast<unsigned long long>(js.appends),
                        static_cast<unsigned long long>(js.fsyncs),
                        static_cast<unsigned long long>(js.append_failures));
            std::remove(jpath);
            json.add(
                "{" +
                bench::perf_row_prefix(b.name.c_str(), mode_name, threads,
                                       bench::batch_name(
                                           bg_opts.engine.batching),
                                       r.fg_latency, compile_s) +
                bench::format(
                    R"(, "first_shard_wait_ms": %.3f, )"
                    R"("bg_wall_ms": %.3f, "bg_shards": %u, "tenants": 1)",
                    r.first_shard_wait * 1e3, r.bg_seconds * 1e3,
                    r.bg_shards) +
                "}");
        }

        if (results[0].fg_detected != results[1].fg_detected ||
            results[0].bg_detected != results[1].bg_detected) {
            std::printf("%-12s VERDICT MISMATCH between fifo and priority\n",
                        b.display.c_str());
            return 1;
        }
        // Circuits whose FIFO wait is itself at timer resolution carry no
        // QoS signal (their background campaign barely saturates): keep
        // them out of the gate's geomean so a slow shared runner cannot
        // dilute it with structural ~1x ratios. A sub-tick *priority* wait
        // is the opposite — the strongest possible win — so it is floored
        // at 10us rather than excluded.
        constexpr double kMinFifoWaitSeconds = 1e-3;
        constexpr double kPriorityWaitFloorSeconds = 1e-5;
        if (results[0].first_shard_wait < kMinFifoWaitSeconds) {
            std::printf("  -> fifo wait %.2f ms below the %.0f ms gate "
                        "floor; circuit excluded from the geomean\n",
                        results[0].first_shard_wait * 1e3,
                        kMinFifoWaitSeconds * 1e3);
        } else {
            const double ratio =
                results[0].first_shard_wait /
                std::max(results[1].first_shard_wait,
                         kPriorityWaitFloorSeconds);
            std::printf("  -> priority admission cuts wait-to-first-shard "
                        "%.1fx (%.2f ms -> %.2f ms)\n",
                        ratio, results[0].first_shard_wait * 1e3,
                        results[1].first_shard_wait * 1e3);
            wait_ratios.push_back(ratio);
        }
    }

    // --- tenant-count sweep: an epoch-batched tenant among N bulk ones ---
    {
        const suite::Benchmark& b = *pick_circuits().front();
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);
        const core::StimulusSpec bulk_stim = suite::remote_stimulus(b, cycles);

        // The epoch tenant: a small fault slice on a 16-epoch random
        // testbench, 2D split left to the CostModel (epoch_split = 0).
        constexpr uint32_t kTenantEpochs = 16;
        suite::RandomStimulus::Config ecfg;
        ecfg.reset = "rst";
        ecfg.reset_active_high = true;
        ecfg.cycles = cycles;
        ecfg.seed = 0x7E7A;
        const core::StimulusSpec epoch_stim =
            suite::remote_stimulus(ecfg, kTenantEpochs);
        const size_t ep_count = std::max<size_t>(1, faults.size() / 8);
        const std::span<const fault::Fault> ep_faults(faults.data(),
                                                      ep_count);

        auto compiled = core::CompiledDesign::build(*design);
        const double compile_s = compiled->compile_seconds();

        // Reference verdicts: the epoch tenant alone, serial epoch loop.
        std::vector<bool> ref;
        {
            core::SessionOptions sopts;
            sopts.num_threads = threads;
            core::Session session(compiled, sopts);
            core::CampaignOptions ropts;
            ropts.epoch_split = 1;
            ref = session.submit(ep_faults, epoch_stim, ropts)
                      .wait()
                      .detected;
        }

        std::printf("\n%-12s %-9s %12s %12s %8s %8s\n", "TenantSweep",
                    "Tenants", "EpLat(ms)", "BgWall(ms)", "Split",
                    "Appends");
        for (const uint32_t tenants : {1u, 2u, 4u}) {
            core::SessionOptions sopts;
            sopts.num_threads = threads;
            const char* jpath = "bench_multitenant.journal";
            std::remove(jpath);
            core::JournalOptions jopts;
            jopts.path = jpath;
            sopts.scheduler.journal =
                std::make_shared<core::CampaignJournal>(jopts);
            core::Session session(compiled, sopts);

            core::CampaignOptions bg_opts;
            bg_opts.num_shards = 8 * threads;
            bg_opts.priority = core::Priority::Low;
            std::vector<core::CampaignHandle> bulk;
            for (uint32_t t = 0; t < tenants; ++t) {
                bulk.push_back(session.submit(faults, bulk_stim, bg_opts));
            }
            while (bulk.front().progress().shards_done < 1) {
                std::this_thread::yield();
            }

            core::CampaignOptions ep_opts;
            ep_opts.priority = core::Priority::High;
            ep_opts.epoch_split = 0;
            Stopwatch watch;
            const auto ep_result =
                session.submit(ep_faults, epoch_stim, ep_opts).wait();
            const double ep_latency = watch.seconds();
            double bg_wall = 0.0;
            for (auto& h : bulk) {
                bg_wall = std::max(bg_wall, h.wait().seconds);
            }

            if (ep_result.detected != ref || ep_result.canceled) {
                std::printf("%-12s VERDICT MISMATCH: epoch tenant behind "
                            "%u bulk tenants differs from the solo serial "
                            "reference\n", b.display.c_str(), tenants);
                return 1;
            }

            // The split the scheduler actually chose = distinct epoch
            // windows across the tenant's shards.
            std::set<std::pair<uint32_t, uint32_t>> windows;
            for (const auto& sb : ep_result.stats.shards) {
                windows.insert({sb.epoch_begin, sb.epoch_end});
            }
            const uint32_t split =
                windows.empty() ? 1u
                                : static_cast<uint32_t>(windows.size());

            const core::JournalStats js =
                session.scheduler().stats().journal;
            std::printf("%-12s %-9u %12.2f %12.2f %8u %8llu\n",
                        b.display.c_str(), tenants, ep_latency * 1e3,
                        bg_wall * 1e3, split,
                        static_cast<unsigned long long>(js.appends));
            std::remove(jpath);
            json.add(
                "{" +
                bench::perf_row_prefix(b.name.c_str(), "epoch-tenant",
                                       threads,
                                       bench::batch_name(
                                           ep_opts.engine.batching),
                                       ep_latency, compile_s) +
                bench::format(
                    R"(, "tenants": %u, "epochs": %u, "split": %u, )"
                    R"("bg_wall_ms": %.3f, "journal_appends": %llu)",
                    tenants, kTenantEpochs, split, bg_wall * 1e3,
                    static_cast<unsigned long long>(js.appends)) +
                "}");
        }
    }

    std::printf("\nVerdicts identical across scheduler configurations.\n");
    if (json.write("BENCH_multitenant.json")) {
        std::printf("Wrote BENCH_multitenant.json\n");
    } else {
        std::fprintf(stderr, "failed to write BENCH_multitenant.json\n");
        return 1;
    }
    // The QoS acceptance gate: priority admission must cut the wait-to-
    // first-shard at least 5x geomean (per-circuit noise on a shared
    // runner can dent one circuit; a real preemption regression dents
    // them all). Immeasurably small priority waits count as wins already.
    if (!wait_ratios.empty()) {
        double log_sum = 0.0;
        for (double r : wait_ratios) log_sum += std::log(r);
        const double geomean =
            std::exp(log_sum / static_cast<double>(wait_ratios.size()));
        std::printf("Wait-to-first-shard reduction geomean: %.1fx "
                    "(gate: >= 5x, %zu circuit%s)\n",
                    geomean, wait_ratios.size(),
                    wait_ratios.size() == 1 ? "" : "s");
        if (geomean < 5.0) {
            std::fprintf(stderr,
                         "QoS REGRESSION: priority admission no longer "
                         "beats FIFO >= 5x\n");
            return 1;
        }
    } else {
        // Every circuit fell under the measurability floor: the run cannot
        // catch a QoS regression. Say so loudly rather than pass quietly.
        std::printf("WARNING: QoS gate VACUOUS — no circuit's fifo wait "
                    "cleared the measurability floor; nothing was gated.\n");
    }
    return 0;
}
