// Fig. 1(b) reproduction: the split of redundant behavioral-node executions
// into explicit (fault inputs identical to good) and implicit (inputs
// differ, result identical), measured by shadow-executing every candidate
// (audit mode) on the four circuits the paper charts.
//
// Paper shape: implicit redundancy is a large share on SHA256, APB, Sodor
// and RISCV-mini — it is the half that prior input-comparison methods miss.
#include <cstdio>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Fig. 1(b): explicit vs implicit redundant behavioral executions");

    std::printf("%-12s %12s %12s %12s %10s %10s\n", "Benchmark", "#Candidates",
                "#Explicit", "#Implicit", "Expl(%)", "Impl(%)");

    for (const char* name :
         {"sha256_hv", "apb", "sodor", "riscv_mini"}) {
        const auto& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        auto stim = suite::make_stimulus(b, scale.cycles(b));
        const auto faults = bench::faults_for(*design, scale.faults(b));

        core::Session session(*design);
        core::CampaignOptions opts;
        opts.engine.mode = core::RedundancyMode::None;   // execute everything
        opts.engine.audit = true;                        // ...and classify
        const auto r = session.run(faults, *stim, opts);

        const auto& s = r.stats;
        const double total = static_cast<double>(s.audit_explicit +
                                                 s.audit_implicit +
                                                 s.audit_nonredundant);
        const double expl =
            total > 0 ? 100.0 * static_cast<double>(s.audit_explicit) / total
                      : 0.0;
        const double impl =
            total > 0 ? 100.0 * static_cast<double>(s.audit_implicit) / total
                      : 0.0;
        std::printf("%-12s %12llu %12llu %12llu %9.1f%% %9.1f%%\n", b.display.c_str(),
                    static_cast<unsigned long long>(s.bn_candidates),
                    static_cast<unsigned long long>(s.audit_explicit),
                    static_cast<unsigned long long>(s.audit_implicit), expl,
                    impl);
    }
    std::printf("\nPaper reference (Fig. 1b): implicit redundancy is roughly "
                "half of all\nbehavioral executions on these circuits.\n");
    return 0;
}
