// Verdict-cache bench + smoke: runs the same campaign on each quick-suite
// circuit three ways —
//
//   nocache      cache-disabled Session (the reference verdicts)
//   cache-cold   fresh store file: every fault misses, shards simulate and
//                populate the store, the Session flushes it on destruction
//   cache-warm   fresh Session + fresh VerdictCache loading that store:
//                the repeat campaign is served from cached verdicts
//
// Detection bitmaps must be bit-identical across all three (determinism is
// what makes the cache sound), and the warm pass must serve >= 90% of the
// faults from the store; the binary exits nonzero otherwise. Wall times
// and hit ratios go to BENCH_cache.json (schema in README "Benchmark
// result files"); CI gates the warm hit ratio against bench/baselines/.
//
//   $ ./build/bench/bench_cache [--quick] [--threads N]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Verdict cache: content-addressed store, cold vs warm repeat");
    suite::register_remote_stimuli();

    const std::vector<std::string> circuits = {"alu", "apb", "sha256_hv"};
    const char* store_path = "bench_cache.store";

    std::printf("%-12s %-12s %10s %8s %8s %8s\n", "Benchmark", "Scenario",
                "Time(s)", "Hits", "HitRatio", "Speedup");
    bench::JsonRows json;
    bool ok = true;

    for (const std::string& name : circuits) {
        const auto& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);
        auto compiled = core::CompiledDesign::build(*design);
        const double compile_s = compiled->compile_seconds();
        const core::StimulusSpec stim = suite::remote_stimulus(b, cycles);

        core::CampaignOptions copts;
        copts.num_shards = 8;

        const auto run_once =
            [&](std::shared_ptr<core::VerdictCache> cache) {
                core::SessionOptions sopts;
                sopts.num_threads = scale.threads;
                sopts.scheduler.verdict_cache = std::move(cache);
                core::Session session(compiled, sopts);
                return session.submit(faults, stim, copts).wait();
            };

        // Reference: no cache at all.
        const core::CampaignResult ref = run_once(nullptr);

        // Cold: a fresh store. The Session's scheduler inserts completed
        // shards; the cache flushes the store file when it destructs.
        std::remove(store_path);
        core::VerdictCacheOptions vopts;
        vopts.store_path = store_path;
        const core::CampaignResult cold =
            run_once(std::make_shared<core::VerdictCache>(vopts));

        // Warm: a fresh cache object loads the flushed store, so the
        // repeat campaign crosses the persistence layer, not just memory.
        const core::CampaignResult warm =
            run_once(std::make_shared<core::VerdictCache>(vopts));
        std::remove(store_path);

        const double n = static_cast<double>(faults.size());
        const double warm_ratio =
            n == 0.0 ? 0.0 : static_cast<double>(warm.cache_hits) / n;
        const double speedup =
            warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;

        const bool identical = ref.detected == cold.detected &&
                               ref.detected == warm.detected &&
                               !cold.canceled && !warm.canceled;
        if (!identical) {
            std::printf("MISMATCH: %s verdict bitmaps differ across "
                        "nocache/cold/warm\n", name.c_str());
            ok = false;
        }
        if (warm_ratio < 0.9) {
            std::printf("LOW HIT RATIO: %s warm pass served %.1f%% from "
                        "cache (need >= 90%%)\n", name.c_str(),
                        warm_ratio * 100.0);
            ok = false;
        }

        std::printf("%-12s %-12s %10.3f %8u %8.3f %8s\n", b.display.c_str(),
                    "cache-cold", cold.seconds, cold.cache_hits, 0.0, "-");
        std::printf("%-12s %-12s %10.3f %8u %8.3f %8.2f\n", b.display.c_str(),
                    "cache-warm", warm.seconds, warm.cache_hits, warm_ratio,
                    speedup);

        json.add("{" +
                 bench::perf_row_prefix(
                     name.c_str(), "cache-cold", cold.num_threads,
                     bench::batch_name(copts.engine.batching), cold.seconds,
                     compile_s) +
                 bench::format(R"(, "faults": %zu, "cache_hits": %u, )"
                               R"("hit_ratio": %.4f)",
                               faults.size(), cold.cache_hits, 0.0) +
                 "}");
        json.add("{" +
                 bench::perf_row_prefix(
                     name.c_str(), "cache-warm", cold.num_threads,
                     bench::batch_name(copts.engine.batching), warm.seconds,
                     compile_s) +
                 bench::format(R"(, "faults": %zu, "cache_hits": %u, )"
                               R"("hit_ratio": %.4f, "speedup": %.2f)",
                               faults.size(), warm.cache_hits, warm_ratio,
                               speedup) +
                 "}");
    }

    if (!json.write("BENCH_cache.json")) {
        std::fprintf(stderr, "failed to write BENCH_cache.json\n");
        return 1;
    }
    std::printf("\nWrote BENCH_cache.json\n");
    return ok ? 0 : 1;
}
