// Table II reproduction: benchmark inventory — stimulus length, cell count
// (Yosys-style estimate), fault-list size, and the coverage-equality check
// between Eraser and the reference simulator (our serial force-and-compare
// oracle standing in for Z01X).
#include <cstdio>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Table II: benchmark information & coverage equality");

    std::printf("%-12s %9s %8s %8s %14s %14s %6s\n", "Benchmark", "#Stimulus",
                "#Cells", "#Faults", "Eraser cov(%)", "Oracle cov(%)",
                "match");

    bool all_match = true;
    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);

        // Both engines share one Session's compiled artifacts.
        core::Session session(*design);

        auto stim1 = suite::make_stimulus(b, cycles);
        core::CampaignOptions copts;
        copts.engine.mode = core::RedundancyMode::Full;
        const auto eraser_run = session.run(faults, *stim1, copts);

        auto stim2 = suite::make_stimulus(b, cycles);
        baseline::SerialOptions sopts;   // event-driven serial oracle
        const auto oracle =
            run_serial_campaign(session.compiled(), faults, *stim2, sopts);

        bool match = eraser_run.num_detected == oracle.num_detected;
        for (size_t f = 0; match && f < faults.size(); ++f) {
            match = eraser_run.detected[f] == oracle.detected[f];
        }
        all_match = all_match && match;

        std::printf("%-12s %9u %8zu %8zu %14.2f %14.2f %6s\n",
                    b.display.c_str(), cycles, design->cell_estimate(),
                    faults.size(), eraser_run.coverage_percent,
                    oracle.coverage_percent, match ? "yes" : "NO");
    }
    std::printf("\n%s\n",
                all_match
                    ? "All benchmarks: Eraser coverage == reference coverage "
                      "(paper Table II property)."
                    : "MISMATCH DETECTED — investigate before trusting "
                      "performance numbers.");
    return all_match ? 0 : 1;
}
