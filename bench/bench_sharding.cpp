// Sharded-campaign scaling sweep: runs the full Eraser campaign on every
// suite benchmark at 1..N worker threads under both shard policies,
// reporting wall time, speedup over the 1-thread sharded run, the
// cost-balance quality of the partition, and the measured per-shard
// breakdown (ROADMAP instrumentation item) for imbalance diagnosis.
// Detection bitmaps are checked against the unsharded serial campaign at
// every point — the scaling layer must never change a verdict.
//
// The whole sweep of a benchmark (every policy, every thread point, the
// diagnosis run) goes through per-thread-count Sessions over ONE
// CompiledDesign, so the design compiles exactly once per benchmark; the
// compile cost is reported separately (compile_ms).
//
// Machine-readable results go to BENCH_sharding.json (schema in README
// "Benchmark result files").
//
//   $ ./build/bench/bench_sharding [--quick] [--threads N]
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace eraser;

namespace {

std::vector<uint32_t> thread_points(uint32_t max_threads) {
    std::vector<uint32_t> points;
    for (uint32_t t = 1; t <= max_threads; t *= 2) points.push_back(t);
    if (points.empty() || points.back() != max_threads) {
        points.push_back(max_threads);
    }
    return points;
}

const char* policy_name(core::ShardPolicy p) {
    return p == core::ShardPolicy::RoundRobin ? "round-robin"
                                              : "cost-balanced";
}

/// Wall-clock imbalance of a run: max shard wall / mean shard wall
/// (1.0 = perfectly even). The est-cost analogue is the planner's view;
/// this is what actually happened.
double wall_imbalance(const std::vector<core::ShardBreakdown>& shards) {
    if (shards.empty()) return 1.0;
    double max_wall = 0.0, total = 0.0;
    for (const auto& sb : shards) {
        max_wall = std::max(max_wall, sb.wall_seconds);
        total += sb.wall_seconds;
    }
    return total > 0.0 ? max_wall * static_cast<double>(shards.size()) / total
                       : 1.0;
}

/// Largest scheduler queue wait across a run's shards (submit -> engine
/// start): how long the unluckiest shard sat behind other work.
double max_queue_seconds(const std::vector<core::ShardBreakdown>& shards) {
    double max_queue = 0.0;
    for (const auto& sb : shards) {
        max_queue = std::max(max_queue, sb.queue_seconds);
    }
    return max_queue;
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Sharding sweep: campaign wall time vs worker threads");

    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    const uint32_t max_threads = scale.threads > 0 ? scale.threads : hw;

    std::printf("%-12s %-14s %8s %8s %10s %9s %9s %9s %9s\n", "Benchmark",
                "Policy", "Threads", "Shards", "Time(s)", "Speedup",
                "Balance", "WallImb", "MaxQ(ms)");
    bench::JsonRows json;

    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);

        auto factory = [&]() { return suite::make_stimulus(b, cycles); };

        // One compile-once artifact for the entire sweep: every Session,
        // every partition, and the unsharded reference share it.
        auto compiled = core::CompiledDesign::build(*design);
        const double compile_s = compiled->compile_seconds();

        // Unsharded reference verdicts.
        core::Session ref_session(compiled, {.num_threads = 1});
        auto ref_stim = suite::make_stimulus(b, cycles);
        const auto ref = ref_session.run(faults, *ref_stim, {});

        for (const auto policy :
             {core::ShardPolicy::RoundRobin, core::ShardPolicy::CostBalanced}) {
            double base_seconds = 0.0;
            for (const uint32_t threads : thread_points(max_threads)) {
                core::Session session(compiled, {.num_threads = threads});
                core::CampaignOptions opts;
                opts.shard_policy = policy;
                const auto run =
                    session.submit(faults, factory, opts).wait();
                if (run.detected != ref.detected) {
                    std::printf("%-12s VERDICT MISMATCH at %u threads (%s)\n",
                                b.display.c_str(), threads,
                                policy_name(policy));
                    return 1;
                }
                if (threads == 1) base_seconds = run.seconds;

                // Balance: max shard cost / mean shard cost (1.0 =
                // perfect), in estimated-cost units under both policies —
                // read straight off the partition the run actually used
                // (each ShardBreakdown carries its shard's est_cost).
                uint64_t max_cost = 0, total_cost = 0;
                for (const auto& sb : run.stats.shards) {
                    max_cost = std::max(max_cost, sb.est_cost);
                    total_cost += sb.est_cost;
                }
                const double balance =
                    total_cost == 0
                        ? 1.0
                        : static_cast<double>(max_cost) *
                              static_cast<double>(run.stats.shards.size()) /
                              static_cast<double>(total_cost);
                const double wall_imb = wall_imbalance(run.stats.shards);
                const double max_q = max_queue_seconds(run.stats.shards);
                std::printf(
                    "%-12s %-14s %8u %8u %10.3f %8.2fx %9.2f %9.2f %9.2f\n",
                    b.display.c_str(), policy_name(policy), threads,
                    run.num_shards, run.seconds,
                    base_seconds > 0 ? base_seconds / run.seconds : 1.0,
                    balance, wall_imb, max_q * 1e3);

                const std::string shard_walls = bench::shard_ms_array(
                    run.stats.shards,
                    [](const core::ShardBreakdown& sb) {
                        return sb.wall_seconds;
                    });
                const std::string shard_queues = bench::shard_ms_array(
                    run.stats.shards,
                    [](const core::ShardBreakdown& sb) {
                        return sb.queue_seconds;
                    });
                // serial_ratio: this run / the unsharded blocking run on
                // the same host — the sharding+scheduler overhead metric
                // CI gates at 1 thread (host speed cancels).
                json.add(
                    "{" +
                    bench::perf_row_prefix(b.name.c_str(),
                                           policy_name(policy), threads,
                                           bench::batch_name(
                                               opts.engine.batching),
                                           run.seconds, compile_s) +
                    bench::format(
                        R"(, "shards": %u, "speedup": %.3f, )"
                        R"("serial_ratio": %.3f, )"
                        R"("balance": %.3f, "wall_imbalance": %.3f, )"
                        R"("shard_wall_ms": %s, "shard_queue_ms": %s})",
                        run.num_shards,
                        base_seconds > 0 ? base_seconds / run.seconds : 1.0,
                        ref.seconds > 0 ? run.seconds / ref.seconds : 1.0,
                        balance, wall_imb, shard_walls.c_str(),
                        shard_queues.c_str()));
            }
        }

        // Per-shard breakdown at the widest cost-balanced point — the
        // diagnosis view for the longest-shard tail.
        core::Session diag_session(compiled, {.num_threads = max_threads});
        core::CampaignOptions wide;
        wide.engine.time_phases = true;
        const auto diag = diag_session.submit(faults, factory, wide).wait();
        std::printf("  per-shard (cost-balanced, %u threads): shard "
                    "faults/detected queue(ms) wall(ms) behav(ms) rtl(ms) "
                    "est-cost\n",
                    diag.num_threads);
        for (const auto& sb : diag.stats.shards) {
            std::printf("    #%-3u %5u/%-5u %9.2f %9.2f %9.2f %7.2f %9llu\n",
                        sb.shard, sb.faults, sb.detected,
                        sb.queue_seconds * 1e3, sb.wall_seconds * 1e3,
                        sb.behavioral_seconds * 1e3, sb.rtl_seconds * 1e3,
                        static_cast<unsigned long long>(sb.est_cost));
        }
    }
    std::printf("\nAll sharded runs matched the serial verdicts bit-for-bit.\n");
    if (json.write("BENCH_sharding.json")) {
        std::printf("Wrote BENCH_sharding.json\n");
    } else {
        std::fprintf(stderr, "failed to write BENCH_sharding.json\n");
        return 1;
    }
    return 0;
}
