// Sharded-campaign scaling sweep: runs the full Eraser campaign on every
// suite benchmark at 1..N worker threads under both shard policies,
// reporting wall time, speedup over the 1-thread sharded run, and the
// cost-balance quality of the partition. Detection bitmaps are checked
// against the unsharded serial campaign at every point — the scaling layer
// must never change a verdict.
//
//   $ ./build/bench/bench_sharding [--quick] [--threads N]
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace eraser;

namespace {

std::vector<uint32_t> thread_points(uint32_t max_threads) {
    std::vector<uint32_t> points;
    for (uint32_t t = 1; t <= max_threads; t *= 2) points.push_back(t);
    if (points.empty() || points.back() != max_threads) {
        points.push_back(max_threads);
    }
    return points;
}

const char* policy_name(core::ShardPolicy p) {
    return p == core::ShardPolicy::RoundRobin ? "round-robin"
                                              : "cost-balanced";
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Sharding sweep: campaign wall time vs worker threads");

    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    const uint32_t max_threads = scale.threads > 0 ? scale.threads : hw;

    std::printf("%-12s %-14s %8s %8s %10s %9s %9s\n", "Benchmark", "Policy",
                "Threads", "Shards", "Time(s)", "Speedup", "Balance");

    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);

        auto factory = [&]() { return suite::make_stimulus(b, cycles); };

        // Per-fault cost estimates, built once per benchmark (the partition
        // for a given shard count is deterministic and timing-independent).
        const auto costs = core::estimate_fault_costs(*design, faults);

        // Unsharded reference verdicts.
        auto ref_stim = suite::make_stimulus(b, cycles);
        core::CampaignOptions ref_opts;
        const auto ref = core::run_concurrent_campaign(*design, faults,
                                                       *ref_stim, ref_opts);

        for (const auto policy :
             {core::ShardPolicy::RoundRobin, core::ShardPolicy::CostBalanced}) {
            double base_seconds = 0.0;
            for (const uint32_t threads : thread_points(max_threads)) {
                core::CampaignOptions opts;
                opts.num_threads = threads;
                opts.shard_policy = policy;
                const auto run = core::run_sharded_campaign(
                    *design, faults, factory, opts, &costs);
                if (run.detected != ref.detected) {
                    std::printf("%-12s VERDICT MISMATCH at %u threads (%s)\n",
                                b.display.c_str(), threads,
                                policy_name(policy));
                    return 1;
                }
                if (threads == 1) base_seconds = run.seconds;

                // Balance: max shard cost / mean shard cost (1.0 = perfect),
                // in estimated-cost units under both policies.
                const auto shards = core::make_shards(
                    *design, faults, run.num_shards, policy, &costs);
                uint64_t max_cost = 0, total_cost = 0;
                for (const auto& s : shards) {
                    max_cost = std::max(max_cost, s.est_cost);
                    total_cost += s.est_cost;
                }
                const double balance =
                    total_cost == 0
                        ? 1.0
                        : static_cast<double>(max_cost) * shards.size() /
                              static_cast<double>(total_cost);
                std::printf("%-12s %-14s %8u %8u %10.3f %8.2fx %9.2f\n",
                            b.display.c_str(), policy_name(policy), threads,
                            run.num_shards, run.seconds,
                            base_seconds > 0 ? base_seconds / run.seconds
                                             : 1.0,
                            balance);
            }
        }
    }
    std::printf("\nAll sharded runs matched the serial verdicts bit-for-bit.\n");
    return 0;
}
