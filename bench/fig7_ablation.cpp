// Fig. 7 reproduction: ablation of the redundancy-elimination stages on the
// seven circuits the paper charts.
//
//   Eraser-- : no behavioral redundancy elimination (every candidate fault
//              executes its faulty behavioral code)
//   Eraser-  : explicit (input-consistency) elimination only — prior art
//   Eraser   : explicit + implicit (Algorithm 1, execution-path walk)
//
// Speedups are relative to Eraser--. Paper shape: Eraser wins clearly where
// the implicit share is high (SHA256_HV, APB, RISCV-mini), barely where it
// is low (PicoRV32) or where behavioral time is negligible (SHA256_C2V).
#include <cstdio>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Fig. 7: ablation on redundancy elimination (Eraser-- = 1.0x)");

    std::printf("%-12s | %11s %11s %11s | %9s %9s\n", "Benchmark",
                "Eraser--(s)", "Eraser-(s)", "Eraser(s)", "E-(x)", "E(x)");

    for (const char* name : {"alu", "fpu", "sha256_hv", "apb", "riscv_mini",
                             "picorv32", "sha256_c2v"}) {
        const auto& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);

        // One Session per circuit: the three ablation modes reuse the same
        // compiled artifacts, so mode-to-mode ratios carry no compile noise.
        core::Session session(*design);
        double secs[3] = {};
        uint32_t detected[3] = {};
        int i = 0;
        for (const auto mode :
             {core::RedundancyMode::None, core::RedundancyMode::Explicit,
              core::RedundancyMode::Full}) {
            auto stim = suite::make_stimulus(b, cycles);
            core::CampaignOptions opts;
            opts.engine.mode = mode;
            const auto r = session.run(faults, *stim, opts);
            secs[i] = r.seconds;
            detected[i] = r.num_detected;
            ++i;
        }
        if (detected[0] != detected[1] || detected[1] != detected[2]) {
            std::printf("%-12s COVERAGE MISMATCH across modes\n",
                        b.display.c_str());
            return 1;
        }
        std::printf("%-12s | %11.3f %11.3f %11.3f | %8.2fx %8.2fx\n",
                    b.display.c_str(), secs[0], secs[1], secs[2],
                    secs[0] / secs[1], secs[0] / secs[2]);
    }
    std::printf("\nPaper reference (Fig. 7): e.g. FPU 2.8x / SHA256_HV 2.0x "
                "for Eraser over\nEraser--, and Eraser ~ Eraser- ~ Eraser-- "
                "on SHA256_C2V.\n");
    return 0;
}
