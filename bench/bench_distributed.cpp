// Distributed campaign fabric bench + smoke: launches real eraser_worker
// processes on loopback sockets and runs the same campaign three ways on
// each quick-suite circuit —
//
//   local             single-process Session (the reference verdicts)
//   distributed       2 worker processes + the local pool
//   distributed_kill  same, but one worker is SIGKILLed mid-campaign, so
//                     its claimed unit must re-dispatch
//
// Detection bitmaps must be bit-identical across all three (the fabric's
// core contract: deterministic units make placement and retries
// invisible). Wall times and fleet counters go to BENCH_distributed.json
// (schema in README "Benchmark result files"); CI gates the
// distributed/local wall ratio against bench/baselines/.
//
//   $ ./build/bench/bench_distributed [--quick] [--threads N]
//
// The worker binary is found next to this one (../tools/eraser_worker) or
// via the ERASER_WORKER_BIN environment variable.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.h"

using namespace eraser;

namespace {

struct Worker {
    pid_t pid = -1;
    uint16_t port = 0;
};

std::string worker_binary(const char* argv0) {
    if (const char* env = std::getenv("ERASER_WORKER_BIN")) return env;
    std::string path(argv0);
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    return dir + "/../tools/eraser_worker";
}

/// fork/exec one worker on an ephemeral port; parses "LISTENING <port>"
/// from its stdout so there is no bind race.
Worker spawn_worker(const std::string& bin) {
    int fds[2];
    if (pipe(fds) != 0) {
        std::perror("pipe");
        return {};
    }
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return {};
    }
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        execl(bin.c_str(), bin.c_str(), "--port", "0",
              static_cast<char*>(nullptr));
        std::perror("execl eraser_worker");
        _exit(127);
    }
    close(fds[1]);
    std::string line;
    char c;
    while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    close(fds[0]);
    Worker w;
    w.pid = pid;
    if (std::sscanf(line.c_str(), "LISTENING %hu", &w.port) != 1) {
        std::fprintf(stderr, "worker did not report a port: '%s'\n",
                     line.c_str());
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
        w.pid = -1;
    }
    return w;
}

void stop_worker(Worker& w) {
    if (w.pid <= 0) return;
    kill(w.pid, SIGKILL);
    waitpid(w.pid, nullptr, 0);
    w.pid = -1;
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Distributed fabric: out-of-process workers + unit re-dispatch");
    suite::register_remote_stimuli();

    const std::string bin = worker_binary(argv[0]);
    const std::vector<std::string> circuits = {"alu", "apb", "sha256_hv"};

    std::printf("%-12s %-17s %10s %8s %8s %8s %8s\n", "Benchmark",
                "Scenario", "Time(s)", "Units", "Redisp", "Lost", "Ratio");
    bench::JsonRows json;

    for (const std::string& name : circuits) {
        const auto& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        // Quick-suite cycle counts keep the smoke CI-sized; full runs use
        // the paper campaign length.
        const uint32_t cycles = scale.cycles(b);
        auto compiled = core::CompiledDesign::build(*design);
        const double compile_s = compiled->compile_seconds();
        const core::StimulusSpec stim = suite::remote_stimulus(b, cycles);
        const core::DesignSpec spec = suite::design_spec(b);

        core::CampaignOptions copts;
        copts.num_shards = 8;   // enough units that the fleet shares work

        // Scenario 1: local-only reference.
        core::CampaignResult local;
        {
            core::SessionOptions sopts;
            sopts.num_threads = scale.threads > 0 ? scale.threads : 2;
            core::Session session(compiled, sopts);
            local = session.submit(faults, stim, copts).wait();
        }
        std::printf("%-12s %-17s %10.3f %8s %8s %8s %8s\n",
                    b.display.c_str(), "local", local.seconds, "-", "-",
                    "-", "-");
        json.add("{" +
                 bench::perf_row_prefix(
                     b.name.c_str(), "local", local.num_threads,
                     bench::batch_name(copts.engine.batching), local.seconds,
                     compile_s) +
                 bench::format(R"(, "faults": %zu, "units_remote": 0, )"
                               R"("units_redispatched": 0, )"
                               R"("workers_lost": 0, "remote_ratio": 1.0})",
                               faults.size()));

        // Scenarios 2 and 3: a 2-worker fleet, then the same with one
        // worker SIGKILLed after the first completed shard.
        for (const bool kill_one : {false, true}) {
            Worker wa = spawn_worker(bin);
            Worker wb = spawn_worker(bin);
            if (wa.pid <= 0 || wb.pid <= 0) {
                std::fprintf(stderr, "failed to launch workers (%s)\n",
                             bin.c_str());
                stop_worker(wa);
                stop_worker(wb);
                return 1;
            }

            core::SessionOptions sopts;
            sopts.num_threads = 1;   // push most units onto the fleet
            sopts.scheduler.remote.workers = {wa.port, wb.port};
            sopts.scheduler.remote.design = spec;
            core::CampaignResult dist;
            core::RemoteFleetStats fleet;
            {
                core::Session session(compiled, sopts);
                pid_t victim = kill_one ? wa.pid : -1;
                core::ShardObserver observer =
                    [&victim](const core::ShardEvent& e) {
                        if (victim > 0 && !e.terminal) {
                            kill(victim, SIGKILL);
                            victim = -1;
                        }
                    };
                dist = session
                           .submit(faults, stim, copts,
                                   kill_one ? observer
                                            : core::ShardObserver())
                           .wait();
                fleet = session.scheduler().stats().remote;
            }
            stop_worker(wa);
            stop_worker(wb);

            if (dist.detected != local.detected) {
                std::fprintf(stderr,
                             "%s: VERDICT MISMATCH (%s) — distributed "
                             "result differs from local\n",
                             b.display.c_str(),
                             kill_one ? "distributed_kill" : "distributed");
                return 1;
            }

            const char* scenario =
                kill_one ? "distributed_kill" : "distributed";
            const double ratio =
                local.seconds > 0 ? dist.seconds / local.seconds : 1.0;
            std::printf("%-12s %-17s %10.3f %8llu %8llu %8u %8.2f\n",
                        b.display.c_str(), scenario, dist.seconds,
                        static_cast<unsigned long long>(
                            fleet.units_completed),
                        static_cast<unsigned long long>(
                            fleet.units_redispatched),
                        fleet.workers_lost, ratio);
            json.add(
                "{" +
                bench::perf_row_prefix(
                    b.name.c_str(), scenario, 1,
                    bench::batch_name(copts.engine.batching), dist.seconds,
                    compile_s) +
                bench::format(R"(, "faults": %zu, "units_remote": %llu, )"
                              R"("units_redispatched": %llu, )"
                              R"("workers_lost": %u, "remote_ratio": %.3f})",
                              faults.size(),
                              static_cast<unsigned long long>(
                                  fleet.units_completed),
                              static_cast<unsigned long long>(
                                  fleet.units_redispatched),
                              fleet.workers_lost, ratio));
        }
    }

    std::printf("\nAll distributed runs matched the local verdicts "
                "bit-for-bit (including after a worker kill).\n");
    if (json.write("BENCH_distributed.json")) {
        std::printf("Wrote BENCH_distributed.json\n");
    } else {
        std::fprintf(stderr, "failed to write BENCH_distributed.json\n");
        return 1;
    }
    return 0;
}
