// Distributed campaign fabric bench + smoke: launches real eraser_worker
// processes (under a WorkerSupervisor) on loopback sockets and runs the
// same campaign three ways on each quick-suite circuit —
//
//   local             single-process Session (the reference verdicts)
//   distributed       2 worker processes + the local pool
//   distributed_kill  same, but one worker is SIGKILLed mid-campaign: its
//                     claimed unit re-dispatches, the supervisor respawns
//                     the process on the same port, and the scheduler's
//                     link lifecycle reconnects to it
//
// Detection bitmaps must be bit-identical across all three (the fabric's
// core contract: deterministic units make placement and retries
// invisible). Wall times and fleet counters go to BENCH_distributed.json
// (schema in README "Benchmark result files"); CI gates the
// distributed/local wall ratio against bench/baselines/.
//
//   $ ./build/bench/bench_distributed [--quick] [--threads N]
//
// The worker binary is found next to this one (../tools/eraser_worker) or
// via the ERASER_WORKER_BIN environment variable.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eraser/supervisor.h"

using namespace eraser;

namespace {

std::string worker_binary(const char* argv0) {
    if (const char* env = std::getenv("ERASER_WORKER_BIN")) return env;
    std::string path(argv0);
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    return dir + "/../tools/eraser_worker";
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Distributed fabric: out-of-process workers + unit re-dispatch");
    suite::register_remote_stimuli();

    const std::string bin = worker_binary(argv[0]);
    const std::vector<std::string> circuits = {"alu", "apb", "sha256_hv"};

    std::printf("%-12s %-17s %10s %8s %8s %8s %8s %8s\n", "Benchmark",
                "Scenario", "Time(s)", "Units", "Redisp", "Reconn", "Quar",
                "Ratio");
    bench::JsonRows json;

    for (const std::string& name : circuits) {
        const auto& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        // Quick-suite cycle counts keep the smoke CI-sized; full runs use
        // the paper campaign length.
        const uint32_t cycles = scale.cycles(b);
        auto compiled = core::CompiledDesign::build(*design);
        const double compile_s = compiled->compile_seconds();
        const core::StimulusSpec stim = suite::remote_stimulus(b, cycles);
        const core::DesignSpec spec = suite::design_spec(b);

        core::CampaignOptions copts;
        copts.num_shards = 8;   // enough units that the fleet shares work

        // Scenario 1: local-only reference.
        core::CampaignResult local;
        {
            core::SessionOptions sopts;
            sopts.num_threads = scale.threads > 0 ? scale.threads : 2;
            core::Session session(compiled, sopts);
            local = session.submit(faults, stim, copts).wait();
        }
        std::printf("%-12s %-17s %10.3f %8s %8s %8s %8s %8s\n",
                    b.display.c_str(), "local", local.seconds, "-", "-",
                    "-", "-", "-");
        json.add("{" +
                 bench::perf_row_prefix(
                     b.name.c_str(), "local", local.num_threads,
                     bench::batch_name(copts.engine.batching), local.seconds,
                     compile_s) +
                 bench::format(R"(, "faults": %zu, "units_remote": 0, )"
                               R"("units_redispatched": 0, )"
                               R"("handshake_failures": 0, )"
                               R"("links_lost": 0, "reconnects": 0, )"
                               R"("quarantines": 0, "remote_ratio": 1.0})",
                               faults.size()));

        // Scenarios 2 and 3: a supervised 2-worker fleet, then the same
        // with one worker SIGKILLed after the first completed shard (the
        // supervisor respawns it; the scheduler reconnects).
        for (const bool kill_one : {false, true}) {
            core::SupervisorOptions supo;
            supo.binary = bin;
            supo.workers = 2;
            core::WorkerSupervisor sup(supo);
            try {
                sup.start();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "failed to launch workers (%s): %s\n",
                             bin.c_str(), e.what());
                return 1;
            }

            core::SessionOptions sopts;
            sopts.num_threads = 1;   // push most units onto the fleet
            sopts.scheduler.remote.workers = sup.ports();
            sopts.scheduler.remote.design = spec;
            core::CampaignResult dist;
            core::RemoteFleetStats fleet;
            {
                core::Session session(compiled, sopts);
                bool killed = false;
                core::ShardObserver observer =
                    [&killed, &sup](const core::ShardEvent& e) {
                        if (!killed && !e.terminal) {
                            sup.kill_worker(0);
                            killed = true;
                        }
                    };
                dist = session
                           .submit(faults, stim, copts,
                                   kill_one ? observer
                                            : core::ShardObserver())
                           .wait();
                fleet = session.scheduler().stats().remote;
            }
            sup.stop();

            if (dist.detected != local.detected) {
                std::fprintf(stderr,
                             "%s: VERDICT MISMATCH (%s) — distributed "
                             "result differs from local\n",
                             b.display.c_str(),
                             kill_one ? "distributed_kill" : "distributed");
                return 1;
            }

            const char* scenario =
                kill_one ? "distributed_kill" : "distributed";
            const double ratio =
                local.seconds > 0 ? dist.seconds / local.seconds : 1.0;
            std::printf("%-12s %-17s %10.3f %8llu %8llu %8u %8u %8.2f\n",
                        b.display.c_str(), scenario, dist.seconds,
                        static_cast<unsigned long long>(
                            fleet.units_completed),
                        static_cast<unsigned long long>(
                            fleet.units_redispatched),
                        fleet.reconnects, fleet.quarantines, ratio);
            json.add(
                "{" +
                bench::perf_row_prefix(
                    b.name.c_str(), scenario, 1,
                    bench::batch_name(copts.engine.batching), dist.seconds,
                    compile_s) +
                bench::format(R"(, "faults": %zu, "units_remote": %llu, )"
                              R"("units_redispatched": %llu, )"
                              R"("handshake_failures": %u, )"
                              R"("links_lost": %u, "reconnects": %u, )"
                              R"("quarantines": %u, "remote_ratio": %.3f})",
                              faults.size(),
                              static_cast<unsigned long long>(
                                  fleet.units_completed),
                              static_cast<unsigned long long>(
                                  fleet.units_redispatched),
                              fleet.handshake_failures, fleet.links_lost,
                              fleet.reconnects, fleet.quarantines, ratio));
        }
    }

    std::printf("\nAll distributed runs matched the local verdicts "
                "bit-for-bit (including after a worker kill).\n");
    if (json.write("BENCH_distributed.json")) {
        std::printf("Wrote BENCH_distributed.json\n");
    } else {
        std::fprintf(stderr, "failed to write BENCH_distributed.json\n");
        return 1;
    }
    return 0;
}
