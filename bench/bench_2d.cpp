// Two-dimensional parallelism bench + smoke: packs an 8-fault x 64-epoch
// sha256_hv campaign into (fault, epoch) lanes three ways —
//
//   1d          epoch_split = 1: every unit runs all 64 epochs serially
//               (the oracle — identical to the pre-2D scheduler)
//   2d          epoch_split = 0: the scheduler's learned CostModel picks
//               the split that minimizes predicted makespan
//   2d-split64  epoch_split = 64: maximum packing, one epoch per window
//               (overhead ceiling: 64x the per-unit fixed cost)
//
// Two campaign variants: the *detecting* one (100-cycle epochs, most
// faults caught — exercises progressive dropout and carries the
// split-identity check on a non-trivial bitmap) and the *undetected* one
// (`-undet` rows: 40-cycle epochs, nothing detected — the directed-safety
// regime of faults that never fire). The undetected variant is where 2D
// wins even single-threaded: with a thin fault axis, fault-dimension
// sharding replicates the *good* simulation across shards for all 64
// epochs, while epoch windows pack every fault into one unit per window
// and replay the good network once per epoch total — a work reduction,
// not just a parallelism gain, so CI gates its speedup (host-independent)
// rather than the dropout-dominated detecting variant's.
//
// Plus a stimulus-pipelining pair on the full-length unepoched testbench —
//
//   stim-serial EngineOptions::pipeline_stimulus off (inline generation)
//   stim-pipe   pipelining on: a producer thread records drive cycles into
//               a bounded ring while the engine executes the previous ones
//
// Detection bitmaps must be bit-identical across all three epoch splits and
// across the pipelining pair (determinism is the 2D contract), and the
// piped run's stimulus-blocked wall must stay under 20% of its campaign
// wall (enforced only where >= 2 hardware threads make overlap possible);
// the binary exits nonzero otherwise. Wall times, splits, speedups and the
// stimulus ratio go to BENCH_2d.json (schema in README "Benchmark result
// files"); CI gates the 2d-undet speedup against
// bench/baselines/BENCH_2d.json.
//
//   $ ./build/bench/bench_2d [--quick] [--threads N]
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"

using namespace eraser;

namespace {

/// Number of distinct epoch windows the campaign actually ran — the split
/// the scheduler chose (1 for classic / unepoched campaigns).
uint32_t actual_split(const core::CampaignResult& r) {
    std::set<std::pair<uint32_t, uint32_t>> windows;
    for (const auto& s : r.stats.shards) {
        windows.insert({s.epoch_begin, s.epoch_end});
    }
    return windows.empty() ? 1u : static_cast<uint32_t>(windows.size());
}

/// Fraction of the campaign wall the engines spent *blocked* on stimulus
/// generation (0 for unpipelined runs — the inline loop never blocks).
double stimulus_ratio(const core::CampaignResult& r) {
    double stim = 0.0;
    double wall = 0.0;
    for (const auto& s : r.stats.shards) {
        stim += s.stimulus_seconds;
        wall += s.wall_seconds;
    }
    return wall > 0.0 ? stim / wall : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Two-dimensional parallelism: (fault, epoch) lanes + pipelined "
        "stimulus");
    suite::register_remote_stimuli();

    const auto& b = suite::find_benchmark("sha256_hv");
    auto design = suite::load_design(b);
    // A deliberately thin fault axis: 8 faults fit one 64-lane word, so the
    // classic scheduler has exactly one unit and idle workers — the regime
    // the epoch axis exists to fill.
    const auto faults = bench::faults_for(*design, 8);
    constexpr uint32_t kEpochs = 64;
    // Fixed scales (ignoring --quick — 8 faults keep both campaigns cheap):
    // 100-cycle epochs detect most of the sample, 40-cycle epochs none.
    // --quick only trims the flat pipelining pair below.
    constexpr uint32_t kDetectCycles = 6400;
    constexpr uint32_t kUndetCycles = 2600;
    auto compiled = core::CompiledDesign::build(*design);
    const double compile_s = compiled->compile_seconds();

    suite::RandomStimulus::Config cfg;
    cfg.reset = "rst";
    cfg.reset_active_high = true;
    cfg.cycles = kDetectCycles;
    cfg.seed = 0x2D2D2025;
    const core::StimulusSpec detect_stim =
        suite::remote_stimulus(cfg, kEpochs);
    suite::RandomStimulus::Config undet_cfg = cfg;
    undet_cfg.cycles = kUndetCycles;
    const core::StimulusSpec undet_stim =
        suite::remote_stimulus(undet_cfg, kEpochs);
    suite::RandomStimulus::Config flat_cfg = cfg;
    flat_cfg.cycles = scale.cycles(b);
    const core::StimulusSpec flat_stim = suite::remote_stimulus(flat_cfg);

    core::SessionOptions sopts;
    sopts.num_threads = scale.threads;
    core::Session session(compiled, sopts);

    const auto run_once = [&](const core::StimulusSpec& stim,
                              uint32_t epoch_split, bool pipeline) {
        core::CampaignOptions copts;
        copts.epoch_split = epoch_split;
        copts.engine.pipeline_stimulus = pipeline;
        return session.submit(faults, stim, copts).wait();
    };

    std::printf("%-12s %6s %10s %8s %10s %9s\n", "Mode", "Split", "Time(s)",
                "Speedup", "StimRatio", "Detected");
    bench::JsonRows json;
    bool ok = true;

    // Warmup: the Session's first submit pays one-time costs (lazy pool
    // creation, cold allocator/page state) that would otherwise be billed
    // to whichever mode runs first and fake a speedup.
    (void)run_once(flat_stim, 1, false);

    // --- epoch axis: serial oracle vs learned vs maximum split -------------
    const auto run_variant = [&](const core::StimulusSpec& stim,
                                 const char* suffix,
                                 std::vector<core::CampaignResult>& rows) {
        const std::string m1 = std::string("1d") + suffix;
        const std::string m2 = std::string("2d") + suffix;
        const std::string m64 = std::string("2d-split64") + suffix;
        rows.push_back(run_once(stim, 1, true));
        rows.push_back(run_once(stim, 0, true));
        rows.push_back(run_once(stim, kEpochs, true));
        const core::CampaignResult& serial = rows[0];
        const char* names[] = {m1.c_str(), m2.c_str(), m64.c_str()};
        for (size_t i = 0; i < rows.size(); ++i) {
            const core::CampaignResult& r = rows[i];
            if (r.detected != serial.detected || r.canceled) {
                std::printf("MISMATCH: %s verdict bitmap differs from the "
                            "serial epoch loop\n", names[i]);
                ok = false;
            }
            const double speedup =
                r.seconds > 0.0 ? serial.seconds / r.seconds : 0.0;
            const uint32_t split = actual_split(r);
            std::printf("%-12s %6u %10.3f %8.2f %10.3f %9u\n", names[i],
                        split, r.seconds, speedup, stimulus_ratio(r),
                        r.num_detected);
            json.add("{" +
                     bench::perf_row_prefix("sha256_hv", names[i],
                                            r.num_threads, "word",
                                            r.seconds, compile_s) +
                     bench::format(R"(, "faults": %zu, "epochs": %u, )"
                                   R"("split": %u, "speedup": %.3f)",
                                   faults.size(), kEpochs, split, speedup) +
                     "}");
        }
    };

    std::vector<core::CampaignResult> detect_rows;
    run_variant(detect_stim, "", detect_rows);
    if (detect_rows[0].num_detected == 0) {
        std::printf("VACUOUS: the detecting epoch campaign caught nothing — "
                    "its split identity check proves nothing on all-zero "
                    "bitmaps\n");
        ok = false;
    }
    std::vector<core::CampaignResult> undet_rows;
    run_variant(undet_stim, "-undet", undet_rows);
    if (undet_rows[0].num_detected != 0) {
        std::printf("NOT UNDETECTED: the -undet campaign caught %u faults; "
                    "its gated speedup no longer isolates the good-sim "
                    "dedup win\n", undet_rows[0].num_detected);
        ok = false;
    }

    // --- stimulus pipelining: inline vs overlapped generation --------------
    const core::CampaignResult unpiped = run_once(flat_stim, 1, false);
    const core::CampaignResult piped = run_once(flat_stim, 1, true);

    if (piped.detected != unpiped.detected || piped.canceled ||
        unpiped.canceled) {
        std::printf("MISMATCH: pipelined stimulus changed the verdict "
                    "bitmap\n");
        ok = false;
    }
    const double ratio = stimulus_ratio(piped);
    if (ratio >= 0.20) {
        // A single-core host cannot overlap generation with execution at
        // all — the producer only runs while the engine is context-switched
        // out — so the stall gate would measure the OS scheduler, not the
        // pipeline. Report, but only fail where overlap is possible.
        if (std::thread::hardware_concurrency() >= 2) {
            std::printf("STALLED PIPELINE: engines blocked on stimulus for "
                        "%.1f%% of the campaign wall (need < 20%%)\n",
                        ratio * 100.0);
            ok = false;
        } else {
            std::printf("note: stall ratio %.1f%% not gated — single-core "
                        "host, generation cannot overlap execution\n",
                        ratio * 100.0);
        }
    }

    struct PipeRow {
        const char* mode;
        const core::CampaignResult& r;
    };
    const PipeRow pipe_rows[] = {{"stim-serial", unpiped},
                                 {"stim-pipe", piped}};
    for (const PipeRow& row : pipe_rows) {
        const double r_ratio = stimulus_ratio(row.r);
        std::printf("%-12s %6u %10.3f %8s %10.3f %9u\n", row.mode, 1u,
                    row.r.seconds, "-", r_ratio, row.r.num_detected);
        json.add("{" +
                 bench::perf_row_prefix("sha256_hv", row.mode,
                                        row.r.num_threads, "word",
                                        row.r.seconds, compile_s) +
                 bench::format(R"(, "faults": %zu, "epochs": 1, )"
                               R"("split": 1, "stimulus_ratio": %.4f)",
                               faults.size(), r_ratio) +
                 "}");
    }

    if (!json.write("BENCH_2d.json")) {
        std::fprintf(stderr, "failed to write BENCH_2d.json\n");
        return 1;
    }
    std::printf("\nWrote BENCH_2d.json\n");
    return ok ? 0 : 1;
}
