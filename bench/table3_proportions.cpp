// Table III reproduction: proportion of redundant behavioral-node (BN)
// executions per circuit — behavioral time share, total BN executions under
// plain concurrent simulation, eliminated executions, and the explicit /
// implicit split (ground truth via audit shadow execution).
#include <cstdio>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment(
        "Table III: proportion of redundant behavioral-node executions");

    std::printf("%-12s %9s %12s %13s %10s %10s\n", "Benchmark", "TimeBN(%)",
                "#TotalBNExec", "#Elimination", "Expl(%)", "Impl(%)");

    double sum_expl = 0.0, sum_impl = 0.0;
    int count = 0;
    for (const char* name : {"alu", "fpu", "sha256_hv", "apb", "riscv_mini",
                             "picorv32", "sha256_c2v"}) {
        const auto& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        auto stim = suite::make_stimulus(b, scale.cycles(b));

        core::Session session(*design);
        core::CampaignOptions opts;
        opts.engine.mode = core::RedundancyMode::None;   // paper accounting
        opts.engine.audit = true;
        opts.engine.time_phases = true;
        const auto r = session.run(faults, *stim, opts);

        const auto& s = r.stats;
        const double bn_time = s.time_behavioral.total_seconds();
        const double rtl_time = s.time_rtl.total_seconds();
        const double time_share =
            bn_time + rtl_time > 0 ? 100.0 * bn_time / (bn_time + rtl_time)
                                   : 0.0;
        const uint64_t total = s.bn_candidates;
        const uint64_t elim = s.audit_explicit + s.audit_implicit;
        const double expl =
            total > 0
                ? 100.0 * static_cast<double>(s.audit_explicit) /
                      static_cast<double>(total)
                : 0.0;
        const double impl =
            total > 0
                ? 100.0 * static_cast<double>(s.audit_implicit) /
                      static_cast<double>(total)
                : 0.0;
        std::printf("%-12s %9.0f %12llu %13llu %9.1f%% %9.1f%%\n",
                    b.display.c_str(), time_share,
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(elim), expl, impl);
        sum_expl += expl;
        sum_impl += impl;
        ++count;
    }
    std::printf("%-12s %9s %12s %13s %9.1f%% %9.1f%%\n", "Average", "-", "-",
                "-", sum_expl / count, sum_impl / count);
    std::printf("\nPaper reference (Table III): both averages around 45%%; "
                "implicit share high\non SHA256_HV/APB/RISCV-mini, low on "
                "PicoRV32; SHA256_C2V has ~1%% BN time.\n");
    return 0;
}
