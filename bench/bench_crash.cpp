// Crash-recovery soak + journaling-overhead bench for the durable
// campaign journal (eraser/journal.h).
//
// For each quick-suite circuit × fault batching mode it runs the same
// campaign four ways —
//
//   reference    journaling off: the ground-truth verdict bitmap and the
//                overhead baseline
//   journal      journaling on, uninterrupted: journal_overhead_ratio =
//                journal wall / reference wall (CI gates the Word rows
//                against bench/baselines/BENCH_crash.json)
//   crash ×3     a forked child re-runs the campaign with journaling on
//                and SIGKILLs itself from inside the shard observer after
//                a seeded number of completed units (the unit's journal
//                record is already written when the observer fires); the
//                parent then opens a fresh Session, Session::recover()s
//                the journal, and checks the resumed campaign
//
// Soak invariants (exit nonzero on any violation):
//   - the child really died by SIGKILL mid-campaign
//   - the recovered bitmap is bit-identical to the reference
//   - resumed_units >= the kill point (nothing journaled was lost)
//   - the faults re-executed after recovery are STRICTLY fewer than the
//     campaign total (journaled work is never redone)
//
// The verdict cache stays off throughout so the re-execution accounting
// measures the journal alone.
//
//   $ ./build/bench/bench_crash [--quick] [--threads N]
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eraser/journal.h"
#include "util/prng.h"

using namespace eraser;

namespace {

constexpr uint32_t kCrashRounds = 3;

struct Scenario {
    std::string circuit;
    core::FaultBatching batching = core::FaultBatching::Word;
};

core::CampaignOptions campaign_options(const Scenario& sc) {
    core::CampaignOptions copts;
    copts.num_shards = 8;
    copts.engine.batching = sc.batching;
    return copts;
}

std::string journal_path(const Scenario& sc) {
    return "bench_crash_" + sc.circuit + "_" +
           bench::batch_name(sc.batching) + ".journal";
}

/// Child mode: run the journaled campaign and SIGKILL ourselves from the
/// observer after `kill_after` completed units. Returns (0) only when the
/// campaign finished before the kill point — the parent treats that as a
/// soak failure, since kill points are drawn within the shard count.
int run_child(const Scenario& sc, uint32_t kill_after,
              const bench::Scale& scale) {
    suite::register_remote_stimuli();
    const auto& b = suite::find_benchmark(sc.circuit);
    auto design = suite::load_design(b);
    const auto faults = bench::faults_for(*design, scale.faults(b));
    const core::StimulusSpec stim =
        suite::remote_stimulus(b, scale.cycles(b));

    core::JournalOptions jopts;
    jopts.path = journal_path(sc);
    // SIGKILL of this process cannot lose write()n data — it survives in
    // the OS page cache — so the soak needs no fsync barriers.
    jopts.fsync_interval = 0;

    core::SessionOptions sopts;
    sopts.num_threads = scale.threads;
    sopts.scheduler.journal = std::make_shared<core::CampaignJournal>(jopts);
    core::Session session(core::CompiledDesign::build(*design), sopts);

    std::atomic<uint32_t> seen{0};
    auto observer = [&seen, kill_after](const core::ShardEvent& ev) {
        if (ev.terminal) return;
        if (seen.fetch_add(1, std::memory_order_relaxed) + 1 == kill_after) {
            // This unit's journal record was appended before the observer
            // fired (write-ahead); dying here models a crash right after.
            ::raise(SIGKILL);
        }
    };
    (void)session.submit(faults, stim, campaign_options(sc), observer).wait();
    return 0;
}

/// Re-exec ourselves in child mode and reap; true when the child died by
/// SIGKILL (the expected soak outcome).
bool spawn_crash_child(const char* self, const Scenario& sc,
                       uint32_t kill_after, const bench::Scale& scale) {
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
        std::vector<std::string> args = {
            self,
            "--child",
            "--circuit",
            sc.circuit,
            "--batch",
            bench::batch_name(sc.batching),
            "--kill-after",
            std::to_string(kill_after),
        };
        if (scale.quick) args.push_back("--quick");
        if (scale.threads > 0) {
            args.push_back("--threads");
            args.push_back(std::to_string(scale.threads));
        }
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        _exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return false;
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

/// Faults actually simulated by `result` (executed shards only — replayed
/// and cached work contributes no ShardBreakdown).
uint64_t executed_faults(const core::CampaignResult& result) {
    uint64_t n = 0;
    for (const core::ShardBreakdown& s : result.stats.shards) n += s.faults;
    return n;
}

}  // namespace

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);

    bool child = false;
    Scenario child_sc;
    uint32_t kill_after = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--child") == 0) {
            child = true;
        } else if (std::strcmp(argv[i], "--circuit") == 0 && i + 1 < argc) {
            child_sc.circuit = argv[++i];
        } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
            child_sc.batching = std::strcmp(argv[++i], "word") == 0
                                    ? core::FaultBatching::Word
                                    : core::FaultBatching::Off;
        } else if (std::strcmp(argv[i], "--kill-after") == 0 && i + 1 < argc) {
            kill_after = static_cast<uint32_t>(std::atoi(argv[++i]));
        }
    }
    if (child) return run_child(child_sc, kill_after, scale);

    bench::print_environment(
        "Campaign journal: crash-recovery soak and journaling overhead");
    suite::register_remote_stimuli();

    const std::vector<std::string> circuits = {"alu", "apb", "sha256_hv"};
    std::printf("%-12s %-6s %-10s %10s %10s %8s %9s\n", "Benchmark", "Batch",
                "Scenario", "Time(s)", "Overhead", "Resumed", "Executed");
    bench::JsonRows json;
    bool ok = true;

    for (const std::string& name : circuits) {
        for (const core::FaultBatching batching :
             {core::FaultBatching::Word, core::FaultBatching::Off}) {
            const Scenario sc{name, batching};
            const auto& b = suite::find_benchmark(name);
            auto design = suite::load_design(b);
            const auto faults = bench::faults_for(*design, scale.faults(b));
            const core::StimulusSpec stim =
                suite::remote_stimulus(b, scale.cycles(b));
            auto compiled = core::CompiledDesign::build(*design);
            const double compile_s = compiled->compile_seconds();
            const core::CampaignOptions copts = campaign_options(sc);
            const std::string jpath = journal_path(sc);

            // Reference: journaling off.
            core::CampaignResult ref;
            {
                core::SessionOptions sopts;
                sopts.num_threads = scale.threads;
                core::Session session(compiled, sopts);
                ref = session.submit(faults, stim, copts).wait();
            }

            // Journaling on, uninterrupted: the overhead measurement, at
            // the default group-commit interval.
            std::remove(jpath.c_str());
            core::CampaignResult jr;
            core::JournalStats jstats;
            {
                core::JournalOptions jopts;
                jopts.path = jpath;
                core::SessionOptions sopts;
                sopts.num_threads = scale.threads;
                sopts.scheduler.journal =
                    std::make_shared<core::CampaignJournal>(jopts);
                core::Session session(compiled, sopts);
                jr = session.submit(faults, stim, copts).wait();
                jstats = session.scheduler().stats().journal;
            }
            if (jr.detected != ref.detected) {
                std::printf("MISMATCH: %s/%s journaled run bitmap differs "
                            "from reference\n",
                            name.c_str(), bench::batch_name(batching));
                ok = false;
            }
            const double overhead =
                ref.seconds > 0.0 ? jr.seconds / ref.seconds : 1.0;
            std::printf("%-12s %-6s %-10s %10.3f %10.3f %8s %9s\n",
                        b.display.c_str(), bench::batch_name(batching),
                        "journal", jr.seconds, overhead, "-", "-");
            std::printf("  journal: %llu appends, %llu fsyncs\n",
                        static_cast<unsigned long long>(jstats.appends),
                        static_cast<unsigned long long>(jstats.fsyncs));
            if (batching == core::FaultBatching::Word) {
                // One gated row per circuit: check_perf_regression.py keys
                // rows by circuit within --mode, so only the Word scenario
                // may emit under mode "journal".
                json.add("{" +
                         bench::perf_row_prefix(name.c_str(), "journal",
                                                jr.num_threads,
                                                bench::batch_name(batching),
                                                jr.seconds, compile_s) +
                         bench::format(R"(, "faults": %zu, )"
                                       R"("journal_overhead_ratio": %.4f)",
                                       faults.size(), overhead) +
                         "}");
            }

            // Crash soak: seeded kill points within the shard count.
            Prng prng(20250423 ^ ref.num_shards ^
                      (batching == core::FaultBatching::Word ? 1u : 2u) ^
                      static_cast<uint64_t>(name.size()) << 32);
            for (uint32_t round = 0; round < kCrashRounds; ++round) {
                const uint32_t kill_at = static_cast<uint32_t>(
                    1 + prng.below(std::max<uint32_t>(1, ref.num_shards)));
                std::remove(jpath.c_str());
                if (!spawn_crash_child(argv[0], sc, kill_at, scale)) {
                    std::printf("SOAK FAILURE: %s/%s round %u child did not "
                                "die by SIGKILL at unit %u\n",
                                name.c_str(), bench::batch_name(batching),
                                round, kill_at);
                    ok = false;
                    continue;
                }

                // Recover in a fresh Session; keep journaling on so the
                // resumed campaign extends the same record stream.
                core::JournalOptions jopts;
                jopts.path = jpath;
                core::SessionOptions sopts;
                sopts.num_threads = scale.threads;
                sopts.scheduler.journal =
                    std::make_shared<core::CampaignJournal>(jopts);
                core::Session session(compiled, sopts);
                auto handles = session.recover(jpath);
                if (handles.size() != 1) {
                    std::printf("SOAK FAILURE: %s/%s round %u recovered %zu "
                                "campaigns (want 1)\n",
                                name.c_str(), bench::batch_name(batching),
                                round, handles.size());
                    ok = false;
                    continue;
                }
                const core::CampaignResult& res = handles[0].wait();
                const uint64_t executed = executed_faults(res);
                const core::JournalStats rs =
                    session.scheduler().stats().journal;

                if (res.detected != ref.detected || res.canceled) {
                    std::printf("SOAK FAILURE: %s/%s round %u recovered "
                                "bitmap differs from reference\n",
                                name.c_str(), bench::batch_name(batching),
                                round);
                    ok = false;
                }
                if (res.resumed_units < kill_at) {
                    std::printf("SOAK FAILURE: %s/%s round %u resumed %u "
                                "units, journaled at least %u\n",
                                name.c_str(), bench::batch_name(batching),
                                round, res.resumed_units, kill_at);
                    ok = false;
                }
                if (executed >= faults.size()) {
                    std::printf("SOAK FAILURE: %s/%s round %u re-executed "
                                "%llu of %zu faults — journaled work was "
                                "redone\n",
                                name.c_str(), bench::batch_name(batching),
                                round,
                                static_cast<unsigned long long>(executed),
                                faults.size());
                    ok = false;
                }
                std::printf("%-12s %-6s crash@%-3u %10s %10s %8u %9llu\n",
                            b.display.c_str(), bench::batch_name(batching),
                            kill_at, "-", "-", res.resumed_units,
                            static_cast<unsigned long long>(executed));
                std::printf(
                    "  journal: %llu replayed, %llu appends\n",
                    static_cast<unsigned long long>(rs.replayed_units),
                    static_cast<unsigned long long>(rs.appends));
            }
            std::remove(jpath.c_str());
        }
    }

    if (!json.write("BENCH_crash.json")) {
        std::fprintf(stderr, "failed to write BENCH_crash.json\n");
        return 1;
    }
    std::printf("\n%s — wrote BENCH_crash.json\n",
                ok ? "SOAK PASSED" : "SOAK FAILED");
    return ok ? 0 : 1;
}
