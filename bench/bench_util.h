// Shared helpers for the paper-artifact bench binaries: evaluation
// environment banner (Table I analogue), scale flags, and campaign plumbing.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eraser/eraser.h"
#include "suite/suite.h"

namespace eraser::bench {

/// Prints the Table I analogue: the environment this run measures on.
inline void print_environment(const char* what) {
    std::printf("================================================================\n");
    std::printf("%s\n", what);
    std::printf("Eraser reproduction | compiler: %s | build: %s\n",
#if defined(__clang__)
                "clang " __clang_version__,
#elif defined(__GNUC__)
                ("gcc " + std::to_string(__GNUC__) + "." +
                 std::to_string(__GNUC_MINOR__))
                    .c_str(),
#else
                "unknown",
#endif
#ifdef NDEBUG
                "Release"
#else
                "Debug"
#endif
    );
    std::printf("Engines: IFsim*=serial event-driven, VFsim*=serial "
                "levelized,\n"
                "         CFSIM-X*=concurrent explicit-only (Z01X stand-in), "
                "Eraser=full\n");
    std::printf("(*substitutions documented in DESIGN.md section 2)\n");
    std::printf("================================================================\n");
}

/// `--quick` shrinks cycles and fault samples for smoke runs; `--threads N`
/// sets the sharded-campaign worker count (0 = hardware concurrency).
struct Scale {
    bool quick = false;
    uint32_t threads = 0;
    uint32_t cycles(const suite::Benchmark& b) const {
        return quick ? b.test_cycles : b.cycles;
    }
    uint32_t faults(const suite::Benchmark& b) const {
        const uint32_t n = b.fault_sample;
        return quick ? (n > 100 ? 100 : n) : n;
    }
};

inline Scale parse_scale(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) s.quick = true;
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            // Consume the value only if it is numeric, so a forgotten N
            // ("--threads --quick") does not swallow the next flag.
            // Non-positive values fall back to 0 = hardware concurrency.
            const char* arg = argv[i + 1];
            if (arg[0] == '-' && !std::isdigit(arg[1])) continue;
            const int v = std::atoi(argv[++i]);
            s.threads = v > 0 ? static_cast<uint32_t>(v) : 0;
        }
    }
    return s;
}

inline std::vector<fault::Fault> faults_for(const rtl::Design& design,
                                            uint32_t sample) {
    fault::FaultGenOptions opts;
    opts.sample_max = sample;
    opts.sample_seed = 20250423;   // arXiv date of the paper, for fun
    return fault::generate_faults(design, opts);
}

}  // namespace eraser::bench
