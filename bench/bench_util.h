// Shared helpers for the paper-artifact bench binaries: evaluation
// environment banner (Table I analogue), scale flags, and campaign plumbing.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "eraser/eraser.h"
#include "suite/suite.h"

namespace eraser::bench {

/// Prints the Table I analogue: the environment this run measures on.
inline void print_environment(const char* what) {
    std::printf("================================================================\n");
    std::printf("%s\n", what);
    std::printf("Eraser reproduction | compiler: %s | build: %s\n",
#if defined(__clang__)
                "clang " __clang_version__,
#elif defined(__GNUC__)
                ("gcc " + std::to_string(__GNUC__) + "." +
                 std::to_string(__GNUC_MINOR__))
                    .c_str(),
#else
                "unknown",
#endif
#ifdef NDEBUG
                "Release"
#else
                "Debug"
#endif
    );
    std::printf("Engines: IFsim*=serial event-driven, VFsim*=serial "
                "levelized,\n"
                "         CFSIM-X*=concurrent explicit-only (Z01X stand-in), "
                "Eraser=full\n");
    std::printf("(*substitutions documented in DESIGN.md section 2)\n");
    std::printf("================================================================\n");
}

/// `--quick` shrinks cycles and fault samples for smoke runs.
struct Scale {
    bool quick = false;
    uint32_t cycles(const suite::Benchmark& b) const {
        return quick ? b.test_cycles : b.cycles;
    }
    uint32_t faults(const suite::Benchmark& b) const {
        const uint32_t n = b.fault_sample;
        return quick ? (n > 100 ? 100 : n) : n;
    }
};

inline Scale parse_scale(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) s.quick = true;
    }
    return s;
}

inline std::vector<fault::Fault> faults_for(const rtl::Design& design,
                                            uint32_t sample) {
    fault::FaultGenOptions opts;
    opts.sample_max = sample;
    opts.sample_seed = 20250423;   // arXiv date of the paper, for fun
    return fault::generate_faults(design, opts);
}

}  // namespace eraser::bench
