// Shared helpers for the paper-artifact bench binaries: evaluation
// environment banner (Table I analogue), scale flags, and campaign plumbing.
#pragma once

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "eraser/eraser.h"
#include "suite/suite.h"

namespace eraser::bench {

/// printf-style formatting into a std::string (for JSON rows). Rows can
/// exceed the stack buffer (e.g. per-shard arrays on many-core hosts), so
/// oversized results re-format into a heap string of the exact length.
[[gnu::format(printf, 1, 2)]] inline std::string format(const char* fmt,
                                                        ...) {
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    char buf[512];
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args2);
        return std::string();
    }
    if (static_cast<size_t>(n) < sizeof(buf)) {
        va_end(args2);
        return std::string(buf, static_cast<size_t>(n));
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

/// Accumulates JSON object rows and writes them as one top-level array —
/// the machine-readable benchmark artifacts (BENCH_fig6.json,
/// BENCH_sharding.json) that track the perf trajectory across PRs. Schema
/// is documented in README "Benchmark result files".
class JsonRows {
  public:
    void add(std::string row) { rows_.push_back(std::move(row)); }

    /// Writes `[ row, row, ... ]` to `path`; returns false on I/O failure.
    [[nodiscard]] bool write(const char* path) const {
        FILE* f = std::fopen(path, "w");
        if (f == nullptr) return false;
        std::fputs("[\n", f);
        for (size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                         i + 1 < rows_.size() ? "," : "");
        }
        std::fputs("]\n", f);
        std::fclose(f);
        return true;
    }

  private:
    std::vector<std::string> rows_;
};

/// Leading fields shared by every perf-artifact JSON row: circuit, engine
/// mode, thread count, fault batching ("word" = 64-lane bit-parallel
/// groups, "off" = scalar divergence lists), the campaign wall time, and —
/// recorded separately since the Session API amortizes it — the one-time
/// CompiledDesign build cost of the circuit (schema in README "Benchmark
/// result files").
inline std::string perf_row_prefix(const char* circuit, const char* mode,
                                   uint32_t threads, const char* batch,
                                   double wall_seconds,
                                   double compile_seconds) {
    return format(R"("circuit": "%s", "mode": "%s", "threads": %u, )"
                  R"("batch": "%s", "wall_ms": %.3f, "compile_ms": %.3f)",
                  circuit, mode, threads, batch, wall_seconds * 1e3,
                  compile_seconds * 1e3);
}

/// JSON value of an engine's FaultBatching knob.
inline const char* batch_name(core::FaultBatching b) {
    return b == core::FaultBatching::Word ? "word" : "off";
}

/// "[a.aaa, b.bbb, ...]" of one per-shard field in milliseconds — the
/// per-shard arrays of BENCH_sharding.json / BENCH_multitenant.json
/// (wall, scheduler queue wait, ...). `get` maps a ShardBreakdown to
/// seconds.
template <typename Get>
inline std::string shard_ms_array(
    const std::vector<core::ShardBreakdown>& shards, Get get) {
    std::string out = "[";
    for (size_t s = 0; s < shards.size(); ++s) {
        out += format("%s%.3f", s > 0 ? ", " : "", get(shards[s]) * 1e3);
    }
    out += "]";
    return out;
}

/// Prints the Table I analogue: the environment this run measures on.
inline void print_environment(const char* what) {
    std::printf("================================================================\n");
    std::printf("%s\n", what);
    std::printf("Eraser reproduction | compiler: %s | build: %s\n",
#if defined(__clang__)
                "clang " __clang_version__,
#elif defined(__GNUC__)
                ("gcc " + std::to_string(__GNUC__) + "." +
                 std::to_string(__GNUC_MINOR__))
                    .c_str(),
#else
                "unknown",
#endif
#ifdef NDEBUG
                "Release"
#else
                "Debug"
#endif
    );
    std::printf("Engines: IFsim*=serial event-driven, VFsim*=serial "
                "levelized,\n"
                "         CFSIM-X*=concurrent explicit-only (Z01X stand-in), "
                "Eraser=full\n");
    std::printf("(*substitutions documented in DESIGN.md section 2)\n");
    std::printf("================================================================\n");
}

/// `--quick` shrinks cycles and fault samples for smoke runs; `--threads N`
/// sets the sharded-campaign worker count (0 = hardware concurrency).
struct Scale {
    bool quick = false;
    uint32_t threads = 0;
    uint32_t cycles(const suite::Benchmark& b) const {
        return quick ? b.test_cycles : b.cycles;
    }
    uint32_t faults(const suite::Benchmark& b) const {
        const uint32_t n = b.fault_sample;
        return quick ? (n > 100 ? 100 : n) : n;
    }
};

inline Scale parse_scale(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) s.quick = true;
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            // Consume the value only if it is numeric, so a forgotten N
            // ("--threads --quick") does not swallow the next flag.
            // Non-positive values fall back to 0 = hardware concurrency.
            const char* arg = argv[i + 1];
            if (arg[0] == '-' && !std::isdigit(arg[1])) continue;
            const int v = std::atoi(argv[++i]);
            s.threads = v > 0 ? static_cast<uint32_t>(v) : 0;
        }
    }
    return s;
}

inline std::vector<fault::Fault> faults_for(const rtl::Design& design,
                                            uint32_t sample) {
    fault::FaultGenOptions opts;
    opts.sample_max = sample;
    opts.sample_seed = 20250423;   // arXiv date of the paper, for fun
    return fault::generate_faults(design, opts);
}

}  // namespace eraser::bench
