// Fig. 6 reproduction: end-to-end fault-simulation time of the simulators
// on all ten benchmarks, normalized like the paper (IFsim = 1).
//
//   IFsim*    — serial, event-driven interpreter (Icarus/force stand-in)
//   VFsim*    — serial, levelized full-evaluation engine (Verilator stand-in)
//   CFSIM-X*  — concurrent engine, explicit-only redundancy (Z01X stand-in)
//   Eraser    — concurrent engine, explicit + implicit (Algorithm 1), with
//               64-lane fault batching (FaultBatching::Word, the default)
//   Eraser-S  — Eraser on the scalar divergence lists (batching off; the
//               batched-vs-scalar ratio is the PR 4 bit-parallel win)
//   Eraser-T  — Eraser forced onto the tree-walking interpreter + scalar
//               store (the full differential oracle; the bytecode-vs-tree
//               ratio is the PR 2 compiled-execution win)
//
// Every engine of a circuit runs through ONE Session/CompiledDesign, so the
// whole sweep compiles each design exactly once; the compile cost is
// reported separately (compile_ms) instead of being folded into every
// configuration's wall time as the pre-Session API did.
//
// Expected shape (not absolute numbers): serial slowest; concurrent engines
// far faster; Eraser >= CFSIM-X wherever behavioral-node time matters, and
// ~equal on SHA256_C2V where behavioral work is ~1% of the total.
//
// Machine-readable results go to BENCH_fig6.json (schema in README
// "Benchmark result files") so the perf trajectory is tracked across PRs.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment("Fig. 6: performance comparison (IFsim = 1.0x)");

    std::printf("%-12s %8s | %8s %8s %8s %8s %8s %8s %8s | %6s %6s %6s %6s\n",
                "Benchmark", "#Faults", "IFsim(s)", "VFsim(s)", "CFX(s)",
                "ErsrT(s)", "ErsrS(s)", "Eraser(s)", "ErsrMT(s)", "VF(x)",
                "CFX(x)", "Ersr(x)", "MT(x)");

    double geo_eraser = 1.0, geo_cfx = 1.0, geo_vf = 1.0, geo_mt = 1.0;
    double geo_vs_tree = 1.0, geo_vs_scalar = 1.0;
    int count = 0;
    bench::JsonRows json;

    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);

        // Compile once; every engine below shares the artifacts.
        core::Session session(*design,
                              {.num_threads = scale.threads});
        const double compile_s = session.compiled().compile_seconds();

        auto run_serial = [&](sim::SchedulingMode mode) {
            auto stim = suite::make_stimulus(b, cycles);
            baseline::SerialOptions opts;
            opts.mode = mode;
            return run_serial_campaign(session.compiled(), faults, *stim,
                                       opts);
        };
        auto run_concurrent = [&](core::RedundancyMode mode,
                                  sim::InterpMode interp,
                                  core::FaultBatching batching) {
            auto stim = suite::make_stimulus(b, cycles);
            core::CampaignOptions opts;
            opts.engine.mode = mode;
            opts.engine.interp = interp;
            opts.engine.batching = batching;
            return session.run(faults, *stim, opts);
        };

        const auto ifsim = run_serial(sim::SchedulingMode::EventDriven);
        const auto vfsim = run_serial(sim::SchedulingMode::Levelized);
        const auto cfx = run_concurrent(core::RedundancyMode::Explicit,
                                        sim::InterpMode::Bytecode,
                                        core::FaultBatching::Word);
        const auto eraser_tree = run_concurrent(core::RedundancyMode::Full,
                                                sim::InterpMode::Tree,
                                                core::FaultBatching::Off);
        const auto eraser_scalar = run_concurrent(
            core::RedundancyMode::Full, sim::InterpMode::Bytecode,
            core::FaultBatching::Off);
        const auto eraser_run = run_concurrent(core::RedundancyMode::Full,
                                               sim::InterpMode::Bytecode,
                                               core::FaultBatching::Word);

        // Eraser on the session's sharded multi-threaded scheduler.
        core::CampaignOptions mt_opts;
        const auto eraser_mt =
            session
                .submit(faults,
                        [&] { return suite::make_stimulus(b, cycles); },
                        mt_opts)
                .wait();

        // Coverage sanity: all seven must agree (the sharded, tree, and
        // scalar runs must also match fault-by-fault, not just in total).
        if (ifsim.num_detected != vfsim.num_detected ||
            ifsim.num_detected != cfx.num_detected ||
            ifsim.num_detected != eraser_run.num_detected ||
            eraser_tree.detected != eraser_run.detected ||
            eraser_scalar.detected != eraser_run.detected ||
            eraser_mt.detected != eraser_run.detected) {
            std::printf("%-12s COVERAGE MISMATCH (%u/%u/%u/%u/%u/%u/%u)\n",
                        b.display.c_str(), ifsim.num_detected,
                        vfsim.num_detected, cfx.num_detected,
                        eraser_tree.num_detected, eraser_scalar.num_detected,
                        eraser_run.num_detected, eraser_mt.num_detected);
            return 1;
        }

        const double base = ifsim.seconds;
        std::printf("%-12s %8zu | %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f"
                    " | %6.1f %6.1f %6.1f %6.1f\n",
                    b.display.c_str(), faults.size(), ifsim.seconds,
                    vfsim.seconds, cfx.seconds, eraser_tree.seconds,
                    eraser_scalar.seconds, eraser_run.seconds,
                    eraser_mt.seconds, base / vfsim.seconds,
                    base / cfx.seconds, base / eraser_run.seconds,
                    base / eraser_mt.seconds);

        auto row = [&](const char* mode, uint32_t threads,
                       const char* batch, double seconds) {
            json.add("{" +
                     bench::perf_row_prefix(b.name.c_str(), mode, threads,
                                            batch, seconds, compile_s) +
                     bench::format(R"(, "speedup": %.3f})", base / seconds));
        };
        const char* off = bench::batch_name(core::FaultBatching::Off);
        const char* word = bench::batch_name(core::FaultBatching::Word);
        row("ifsim", 1, off, ifsim.seconds);
        row("vfsim", 1, off, vfsim.seconds);
        row("cfsimx", 1, word, cfx.seconds);
        row("eraser_tree", 1, off, eraser_tree.seconds);
        row("eraser_scalar", 1, off, eraser_scalar.seconds);
        row("eraser", 1, word, eraser_run.seconds);
        row("eraser_mt", eraser_mt.num_threads,
            bench::batch_name(mt_opts.engine.batching), eraser_mt.seconds);

        geo_vf *= base / vfsim.seconds;
        geo_cfx *= base / cfx.seconds;
        geo_eraser *= base / eraser_run.seconds;
        geo_mt *= base / eraser_mt.seconds;
        geo_vs_tree *= eraser_tree.seconds / eraser_run.seconds;
        geo_vs_scalar *= eraser_scalar.seconds / eraser_run.seconds;
        ++count;
    }

    auto geo = [&](double product) {
        return count > 0 ? std::pow(product, 1.0 / count) : 0.0;
    };
    std::printf("\nGeomean speedup vs IFsim*: VFsim* %.1fx | CFSIM-X* %.1fx | "
                "Eraser %.1fx | Eraser-MT %.1fx\n",
                geo(geo_vf), geo(geo_cfx), geo(geo_eraser), geo(geo_mt));
    std::printf("Geomean Eraser vs CFSIM-X* (Z01X stand-in): %.2fx\n",
                geo(geo_eraser) / geo(geo_cfx));
    std::printf("Geomean bytecode vs tree interpreter (Eraser, Full): "
                "%.2fx\n",
                geo(geo_vs_tree));
    std::printf("Geomean 64-lane batching vs scalar store (Eraser, Full): "
                "%.2fx\n",
                geo(geo_vs_scalar));
    std::printf("Paper reference: Eraser averages 3.9x vs Z01X and 5.9x vs "
                "VFsim\n(absolute ratios differ — our substrate is an "
                "interpreter, see EXPERIMENTS.md).\n");

    if (json.write("BENCH_fig6.json")) {
        std::printf("Wrote BENCH_fig6.json\n");
    } else {
        std::fprintf(stderr, "failed to write BENCH_fig6.json\n");
        return 1;
    }
    return 0;
}
