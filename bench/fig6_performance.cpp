// Fig. 6 reproduction: end-to-end fault-simulation time of the four
// simulators on all ten benchmarks, normalized like the paper (IFsim = 1).
//
//   IFsim*   — serial, event-driven interpreter (Icarus/force stand-in)
//   VFsim*   — serial, levelized full-evaluation engine (Verilator stand-in)
//   CFSIM-X* — concurrent engine, explicit-only redundancy (Z01X stand-in)
//   Eraser   — concurrent engine, explicit + implicit (Algorithm 1)
//
// Expected shape (not absolute numbers): serial slowest; concurrent engines
// far faster; Eraser >= CFSIM-X wherever behavioral-node time matters, and
// ~equal on SHA256_C2V where behavioral work is ~1% of the total.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace eraser;

int main(int argc, char** argv) {
    const auto scale = bench::parse_scale(argc, argv);
    bench::print_environment("Fig. 6: performance comparison (IFsim = 1.0x)");

    std::printf("%-12s %9s | %9s %9s %9s %9s %9s | %7s %7s %7s %7s\n",
                "Benchmark", "#Faults", "IFsim(s)", "VFsim(s)", "CFSIMX(s)",
                "Eraser(s)", "ErsrMT(s)", "VF(x)", "CFX(x)", "Erasr(x)",
                "MT(x)");

    double geo_eraser = 1.0, geo_cfx = 1.0, geo_vf = 1.0, geo_mt = 1.0;
    int count = 0;

    for (const auto& b : suite::registry()) {
        auto design = suite::load_design(b);
        const auto faults = bench::faults_for(*design, scale.faults(b));
        const uint32_t cycles = scale.cycles(b);

        auto run_serial = [&](sim::SchedulingMode mode) {
            auto stim = suite::make_stimulus(b, cycles);
            baseline::SerialOptions opts;
            opts.mode = mode;
            return run_serial_campaign(*design, faults, *stim, opts);
        };
        auto run_concurrent = [&](core::RedundancyMode mode) {
            auto stim = suite::make_stimulus(b, cycles);
            core::CampaignOptions opts;
            opts.engine.mode = mode;
            return core::run_concurrent_campaign(*design, faults, *stim,
                                                 opts);
        };

        const auto ifsim = run_serial(sim::SchedulingMode::EventDriven);
        const auto vfsim = run_serial(sim::SchedulingMode::Levelized);
        const auto cfx = run_concurrent(core::RedundancyMode::Explicit);
        const auto eraser_run = run_concurrent(core::RedundancyMode::Full);

        // Eraser with the sharded multi-threaded campaign scheduler.
        core::CampaignOptions mt_opts;
        mt_opts.num_threads = scale.threads;   // 0 = hardware concurrency
        const auto eraser_mt = core::run_sharded_campaign(
            *design, faults, [&] { return suite::make_stimulus(b, cycles); },
            mt_opts);

        // Coverage sanity: all five must agree (the sharded run must also
        // match fault-by-fault, not just in total).
        if (ifsim.num_detected != vfsim.num_detected ||
            ifsim.num_detected != cfx.num_detected ||
            ifsim.num_detected != eraser_run.num_detected ||
            eraser_mt.detected != eraser_run.detected) {
            std::printf("%-12s COVERAGE MISMATCH (%u/%u/%u/%u/%u)\n",
                        b.display.c_str(), ifsim.num_detected,
                        vfsim.num_detected, cfx.num_detected,
                        eraser_run.num_detected, eraser_mt.num_detected);
            return 1;
        }

        const double base = ifsim.seconds;
        std::printf("%-12s %9zu | %9.3f %9.3f %9.3f %9.3f %9.3f | %7.1f "
                    "%7.1f %7.1f %7.1f\n",
                    b.display.c_str(), faults.size(), ifsim.seconds,
                    vfsim.seconds, cfx.seconds, eraser_run.seconds,
                    eraser_mt.seconds, base / vfsim.seconds,
                    base / cfx.seconds, base / eraser_run.seconds,
                    base / eraser_mt.seconds);
        geo_vf *= base / vfsim.seconds;
        geo_cfx *= base / cfx.seconds;
        geo_eraser *= base / eraser_run.seconds;
        geo_mt *= base / eraser_mt.seconds;
        ++count;
    }

    auto geo = [&](double product) {
        return count > 0 ? std::pow(product, 1.0 / count) : 0.0;
    };
    std::printf("\nGeomean speedup vs IFsim*: VFsim* %.1fx | CFSIM-X* %.1fx | "
                "Eraser %.1fx | Eraser-MT %.1fx\n",
                geo(geo_vf), geo(geo_cfx), geo(geo_eraser), geo(geo_mt));
    std::printf("Geomean Eraser vs CFSIM-X* (Z01X stand-in): %.2fx\n",
                geo(geo_eraser) / geo(geo_cfx));
    std::printf("Paper reference: Eraser averages 3.9x vs Z01X and 5.9x vs "
                "VFsim\n(absolute ratios differ — our substrate is an "
                "interpreter, see EXPERIMENTS.md).\n");
    return 0;
}
