// Microbenchmark of the two divergence-store representations (PR 4): the
// scalar sorted-entry DivergenceList vs the batched mask + value-plane
// DivergenceBlockStore, across the operations the concurrent engine's hot
// paths issue — set (insert + update), find, erase, iterate — at 1 / 8 / 64
// diverged faults per signal, plus the DivergenceList merge_from batch
// commit vs the per-record set/erase loop it replaced on the NBA path.
//
// Machine-readable results go to BENCH_micro_divergence.json (schema in
// README "Benchmark result files"). No google-benchmark dependency: each
// (structure, op, diverged) cell is timed over enough repetitions that a
// cell measures tens of milliseconds.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "fault/divergence.h"
#include "util/prng.h"
#include "util/timer.h"

using namespace eraser;
using fault::DivergenceBlockStore;
using fault::DivergenceList;
using fault::FaultId;

namespace {

/// Fault-id universe: one 64-lane group's worth, shuffled so list inserts
/// hit random positions (the memmove worst case the block store sidesteps).
std::vector<FaultId> shuffled_ids(uint32_t n, uint64_t seed) {
    std::vector<FaultId> ids(n);
    for (uint32_t i = 0; i < n; ++i) ids[i] = i;
    Prng rng(seed);
    for (uint32_t i = n; i > 1; --i) {
        const uint32_t j = static_cast<uint32_t>(rng.below(i));
        std::swap(ids[i - 1], ids[j]);
    }
    return ids;
}

struct Cell {
    const char* structure;
    const char* op;
    uint32_t diverged;
    double ns_per_op;
};

constexpr unsigned kWidth = 32;

template <typename Body>
double time_ns_per_op(uint64_t total_ops, Body&& body) {
    Stopwatch watch;
    body();
    return static_cast<double>(watch.ns()) /
           static_cast<double>(total_ops);
}

}  // namespace

int main(int, char**) {
    bench::print_environment(
        "micro_divergence: scalar list vs batched block store");
    std::printf("%-6s %-10s %9s %12s\n", "store", "op", "diverged",
                "ns/op");

    std::vector<Cell> cells;
    const uint32_t kDivergedSteps[] = {1, 8, 64};
    const uint64_t kReps = 200'000;

    for (const uint32_t d : kDivergedSteps) {
        const auto ids = shuffled_ids(64, /*seed=*/d);
        const uint64_t ops = kReps * d;

        // --- set: d inserts into an empty store, repeated ------------------
        cells.push_back(
            {"list", "set", d, time_ns_per_op(ops, [&] {
                 DivergenceList list;
                 for (uint64_t r = 0; r < kReps; ++r) {
                     list.clear();
                     for (uint32_t i = 0; i < d; ++i) {
                         list.set(ids[i], Value(r + i, kWidth));
                     }
                 }
             })});
        cells.push_back(
            {"block", "set", d, time_ns_per_op(ops, [&] {
                 DivergenceBlockStore store;
                 store.reset(1);
                 for (uint64_t r = 0; r < kReps; ++r) {
                     store.clear();
                     for (uint32_t i = 0; i < d; ++i) {
                         store.set(0, ids[i], r + i);
                     }
                 }
             })});

        // --- find: hits and misses over a populated store ------------------
        {
            DivergenceList list;
            DivergenceBlockStore store;
            store.reset(1);
            for (uint32_t i = 0; i < d; ++i) {
                list.set(ids[i], Value(i, kWidth));
                store.set(0, ids[i], i);
            }
            uint64_t sink = 0;
            cells.push_back(
                {"list", "find", d, time_ns_per_op(kReps * 64, [&] {
                     for (uint64_t r = 0; r < kReps; ++r) {
                         for (uint32_t f = 0; f < 64; ++f) {
                             sink += list.find(f) != nullptr;
                         }
                     }
                 })});
            cells.push_back(
                {"block", "find", d, time_ns_per_op(kReps * 64, [&] {
                     for (uint64_t r = 0; r < kReps; ++r) {
                         for (uint32_t f = 0; f < 64; ++f) {
                             sink += store.find(0, f) != nullptr;
                         }
                     }
                 })});
            if (sink == UINT64_MAX) std::printf("impossible\n");
        }

        // --- erase: insert + erase round trip, ns per operation (every
        // erase needs a fresh insert, so both representations pay the same
        // 2d operations per repetition and the comparison stays fair) -----
        cells.push_back(
            {"list", "erase", d, time_ns_per_op(ops * 2, [&] {
                 DivergenceList list;
                 for (uint64_t r = 0; r < kReps; ++r) {
                     for (uint32_t i = 0; i < d; ++i) {
                         list.set(ids[i], Value(i, kWidth));
                     }
                     for (uint32_t i = 0; i < d; ++i) list.erase(ids[i]);
                 }
             })});
        cells.push_back(
            {"block", "erase", d, time_ns_per_op(ops * 2, [&] {
                 DivergenceBlockStore store;
                 store.reset(1);
                 for (uint64_t r = 0; r < kReps; ++r) {
                     for (uint32_t i = 0; i < d; ++i) {
                         store.set(0, ids[i], i);
                     }
                     for (uint32_t i = 0; i < d; ++i) store.erase(0, ids[i]);
                 }
             })});

        // --- iterate: walk every diverged entry ----------------------------
        {
            DivergenceList list;
            DivergenceBlockStore store;
            store.reset(1);
            for (uint32_t i = 0; i < d; ++i) {
                list.set(ids[i], Value(i, kWidth));
                store.set(0, ids[i], i);
            }
            uint64_t sink = 0;
            cells.push_back(
                {"list", "iterate", d, time_ns_per_op(ops, [&] {
                     for (uint64_t r = 0; r < kReps; ++r) {
                         for (const auto& e : list.entries()) {
                             sink += e.value.bits();
                         }
                     }
                 })});
            cells.push_back(
                {"block", "iterate", d, time_ns_per_op(ops, [&] {
                     for (uint64_t r = 0; r < kReps; ++r) {
                         uint64_t m = store.mask(0);
                         while (m != 0) {
                             const uint32_t l = static_cast<uint32_t>(
                                 std::countr_zero(m));
                             m &= m - 1;
                             sink += store.value(0, l);
                         }
                     }
                 })});
            if (sink == UINT64_MAX) std::printf("impossible\n");
        }

        // --- NBA batch commit: merge_from vs per-record set/erase ----------
        // Two alternating update batches, each mixing divergent values with
        // the good value on different faults, so EVERY repetition really
        // mutates the list (entries appear, move, and disappear — the
        // NBA-commit access pattern that churned the list tail). A single
        // repeated batch would reach steady state after one repetition and
        // measure only the no-op compare path.
        {
            std::vector<DivergenceList::Entry> batch[2];
            const Value good(0, kWidth);
            for (uint32_t i = 0; i < d; ++i) {
                batch[0].push_back(
                    {ids[i], Value(i % 2 == 0 ? i + 1 : 0, kWidth)});
                batch[1].push_back(
                    {ids[i], Value(i % 2 == 0 ? 0 : i + 7, kWidth)});
            }
            for (auto& updates : batch) {
                std::sort(updates.begin(), updates.end(),
                          [](const auto& a, const auto& b) {
                              return a.fault < b.fault;
                          });
            }
            std::vector<DivergenceList::Entry> scratch;
            cells.push_back(
                {"list", "set_erase_loop", d, time_ns_per_op(ops, [&] {
                     DivergenceList list;
                     for (uint64_t r = 0; r < kReps; ++r) {
                         for (const auto& u : batch[r & 1]) {
                             if (u.value != good) {
                                 list.set(u.fault, u.value);
                             } else {
                                 list.erase(u.fault);
                             }
                         }
                     }
                 })});
            cells.push_back(
                {"list", "merge_from", d, time_ns_per_op(ops, [&] {
                     DivergenceList list;
                     for (uint64_t r = 0; r < kReps; ++r) {
                         list.merge_from(batch[r & 1], good, scratch);
                     }
                 })});
        }
    }

    bench::JsonRows json;
    for (const Cell& c : cells) {
        std::printf("%-6s %-10s %9u %12.2f\n", c.structure, c.op,
                    c.diverged, c.ns_per_op);
        json.add(bench::format(
            R"({"structure": "%s", "op": "%s", "diverged": %u, )"
            R"("ns_per_op": %.3f})",
            c.structure, c.op, c.diverged, c.ns_per_op));
    }
    if (json.write("BENCH_micro_divergence.json")) {
        std::printf("Wrote BENCH_micro_divergence.json\n");
        return 0;
    }
    std::fprintf(stderr, "failed to write BENCH_micro_divergence.json\n");
    return 1;
}
