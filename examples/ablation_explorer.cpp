// Ablation explorer: run any suite benchmark under the three redundancy
// modes (Eraser-- / Eraser- / Eraser) and show where the time goes — the
// interactive companion to the paper's Fig. 7 / Table III.
//
// All three modes run through ONE Session, so the design compiles exactly
// once (the amortized cost is printed up front) and the mode-to-mode
// ratios measure redundancy elimination alone.
//
//   $ ./build/examples/ablation_explorer riscv_mini
//   $ ./build/examples/ablation_explorer            (lists benchmarks)
#include <cstdio>

#include "eraser/eraser.h"
#include "suite/suite.h"

int main(int argc, char** argv) {
    using namespace eraser;

    if (argc < 2) {
        std::printf("usage: %s <benchmark>\navailable:\n", argv[0]);
        for (const auto& b : suite::registry()) {
            std::printf("  %-12s %s\n", b.name.c_str(), b.display.c_str());
        }
        return 0;
    }

    const auto& bench = suite::find_benchmark(argv[1]);
    auto design = suite::load_design(bench);
    fault::FaultGenOptions fopts;
    fopts.sample_max = bench.fault_sample;
    const auto faults = fault::generate_faults(*design, fopts);

    core::Session session(*design);
    std::printf("%s: %zu cells, %zu faults, %u cycles\n",
                bench.display.c_str(), design->cell_estimate(), faults.size(),
                bench.cycles);
    std::printf("compiled once for the whole sweep: %.3f ms (bytecode, "
                "CFGs, VDG cost model)\n\n",
                session.compiled().compile_seconds() * 1e3);

    struct Row {
        const char* label;
        core::RedundancyMode mode;
    };
    const Row rows[] = {
        {"Eraser-- (no elimination)", core::RedundancyMode::None},
        {"Eraser-  (explicit only)", core::RedundancyMode::Explicit},
        {"Eraser   (explicit+implicit)", core::RedundancyMode::Full},
    };

    double base = 0.0;
    for (const Row& row : rows) {
        auto stim = suite::make_stimulus(bench, bench.cycles);
        core::CampaignOptions opts;
        opts.engine.mode = row.mode;
        opts.engine.time_phases = true;
        const auto r = session.run(faults, *stim, opts);
        if (base == 0.0) base = r.seconds;

        const auto& s = r.stats;
        std::printf("%s\n", row.label);
        std::printf("  time %.3fs (%.2fx)   coverage %.2f%%\n", r.seconds,
                    base / r.seconds, r.coverage_percent);
        std::printf("  behavioral: %llu candidates = %llu executed + %llu "
                    "explicit-skip + %llu implicit-skip\n",
                    static_cast<unsigned long long>(s.bn_candidates),
                    static_cast<unsigned long long>(s.bn_executed),
                    static_cast<unsigned long long>(s.bn_skipped_explicit),
                    static_cast<unsigned long long>(s.bn_skipped_implicit));
        std::printf("  phase time: behavioral %.3fs, RTL nodes %.3fs\n\n",
                    s.time_behavioral.total_seconds(),
                    s.time_rtl.total_seconds());
    }
    std::printf("reading the numbers: Eraser- removes the explicit skips' "
                "execution cost;\nEraser additionally proves implicit skips "
                "via the VDG walk (Algorithm 1).\nCoverage must be identical "
                "in all three rows — elimination is lossless.\n");
    return 0;
}
