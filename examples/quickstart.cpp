// Quickstart: compile a small Verilog design, open a Session (which
// compiles the design exactly once), submit an asynchronous sharded fault
// campaign with streaming per-shard results, and sweep the redundancy
// modes on the same Session — the five-minute tour of the public API.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "eraser/eraser.h"
#include "suite/random_stimulus.h"

int main() {
    using namespace eraser;

    // 1. Compile RTL. Any synthesizable-subset Verilog works; see README
    //    for the language boundary.
    auto design = frontend::compile(R"(
        module traffic_light(input clk, input rst, input car_waiting,
                             output reg [1:0] main_light,
                             output reg [1:0] side_light,
                             output reg [3:0] timer);
          localparam GREEN = 2'd0, YELLOW = 2'd1, RED = 2'd2;
          reg [1:0] state;
          always @(posedge clk) begin
            if (rst) begin
              state <= 0;
              timer <= 0;
              main_light <= GREEN;
              side_light <= RED;
            end else begin
              timer <= timer + 1;
              case (state)
                2'd0:   // main green until a car waits on the side road
                  if (car_waiting && timer >= 4) begin
                    state <= 2'd1;
                    main_light <= YELLOW;
                    timer <= 0;
                  end
                2'd1:   // yellow for 2 ticks
                  if (timer >= 2) begin
                    state <= 2'd2;
                    main_light <= RED;
                    side_light <= GREEN;
                    timer <= 0;
                  end
                2'd2:   // side green for 6 ticks
                  if (timer >= 6) begin
                    state <= 2'd0;
                    main_light <= GREEN;
                    side_light <= RED;
                    timer <= 0;
                  end
                default: state <= 2'd0;
              endcase
            end
          end
        endmodule
    )",
                                    "traffic_light");
    std::printf("compiled: %zu signals, %zu RTL nodes, %zu behavioral "
                "node(s)\n",
                design->signals.size(), design->num_rtl_nodes(),
                design->num_behaviors());

    // 2. Generate the stuck-at fault universe (per bit of every wire/reg).
    const auto faults = fault::generate_faults(*design, {});
    std::printf("fault list: %zu stuck-at faults\n", faults.size());

    // 3. Describe the testbench: reset, then seeded random inputs.
    suite::RandomStimulus::Config cfg;
    cfg.reset = "rst";
    cfg.cycles = 500;
    cfg.seed = 2025;

    // 4. Open a Session: bytecode programs, CFGs, and the shard cost model
    //    are built here, once — every campaign below reuses them.
    core::Session session(*design, {.num_threads = 4});
    std::printf("session compiled the design once in %.3f ms\n",
                session.compiled().compile_seconds() * 1e3);

    // 5. Submit the Eraser campaign (explicit + implicit redundancy
    //    elimination). submit() returns immediately; the factory builds one
    //    identical stimulus per shard; per-shard verdicts stream through
    //    the observer as they land, and the merged bitmap is bit-identical
    //    to a single-threaded run.
    core::CampaignOptions opts;
    auto handle = session.submit(
        faults, [&] { return std::make_unique<suite::RandomStimulus>(cfg); },
        opts, [](const core::ShardEvent& e) {
            if (e.terminal) return;   // last callback: campaign finalizing
            std::printf("  shard %u landed: %u/%u faults detected in "
                        "%.2f ms\n",
                        e.shard, e.breakdown.detected, e.breakdown.faults,
                        e.breakdown.wall_seconds * 1e3);
        });
    const auto report = handle.wait();

    std::printf("\ncoverage: %.2f%% (%u/%u faults detected) in %.3fs "
                "(%u shards on %u threads)\n",
                report.coverage_percent, report.num_detected,
                report.num_faults, report.seconds, report.num_shards,
                report.num_threads);
    std::printf("behavioral executions: %llu candidates, %llu executed, "
                "%llu skipped explicit, %llu skipped implicit\n",
                static_cast<unsigned long long>(report.stats.bn_candidates),
                static_cast<unsigned long long>(report.stats.bn_executed),
                static_cast<unsigned long long>(
                    report.stats.bn_skipped_explicit),
                static_cast<unsigned long long>(
                    report.stats.bn_skipped_implicit));

    // 6. Sweep the ablation modes on the SAME session: no recompilation,
    //    identical verdicts, only the redundancy-elimination work changes.
    std::printf("\nmode sweep on one session (compile cost already paid):\n");
    struct { const char* label; core::RedundancyMode mode; } sweep[] = {
        {"Eraser--", core::RedundancyMode::None},
        {"Eraser- ", core::RedundancyMode::Explicit},
        {"Eraser  ", core::RedundancyMode::Full},
    };
    for (const auto& point : sweep) {
        core::CampaignOptions mopts;
        mopts.engine.mode = point.mode;
        const auto r = session
                           .submit(faults,
                                   [&] {
                                       return std::make_unique<
                                           suite::RandomStimulus>(cfg);
                                   },
                                   mopts)
                           .wait();
        std::printf("  %s %.3fs, coverage %.2f%%%s\n", point.label,
                    r.seconds, r.coverage_percent,
                    r.detected == report.detected ? " (bit-identical)"
                                                  : " (MISMATCH!)");
        if (r.detected != report.detected) return 1;
    }

    // 7. Every undetected fault is a coverage hole worth inspecting.
    std::printf("\nundetected faults:\n");
    for (size_t f = 0; f < faults.size(); ++f) {
        if (!report.detected[f]) {
            std::printf("  %s\n", faults[f].str(*design).c_str());
        }
    }
    return 0;
}
