// Quickstart: compile a small Verilog design, generate a stuck-at fault
// list, run the Eraser concurrent fault-simulation campaign, and print the
// fault coverage — the five-minute tour of the public API.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "eraser/eraser.h"
#include "suite/random_stimulus.h"

int main() {
    using namespace eraser;

    // 1. Compile RTL. Any synthesizable-subset Verilog works; see README
    //    for the language boundary.
    auto design = frontend::compile(R"(
        module traffic_light(input clk, input rst, input car_waiting,
                             output reg [1:0] main_light,
                             output reg [1:0] side_light,
                             output reg [3:0] timer);
          localparam GREEN = 2'd0, YELLOW = 2'd1, RED = 2'd2;
          reg [1:0] state;
          always @(posedge clk) begin
            if (rst) begin
              state <= 0;
              timer <= 0;
              main_light <= GREEN;
              side_light <= RED;
            end else begin
              timer <= timer + 1;
              case (state)
                2'd0:   // main green until a car waits on the side road
                  if (car_waiting && timer >= 4) begin
                    state <= 2'd1;
                    main_light <= YELLOW;
                    timer <= 0;
                  end
                2'd1:   // yellow for 2 ticks
                  if (timer >= 2) begin
                    state <= 2'd2;
                    main_light <= RED;
                    side_light <= GREEN;
                    timer <= 0;
                  end
                2'd2:   // side green for 6 ticks
                  if (timer >= 6) begin
                    state <= 2'd0;
                    main_light <= GREEN;
                    side_light <= RED;
                    timer <= 0;
                  end
                default: state <= 2'd0;
              endcase
            end
          end
        endmodule
    )",
                                    "traffic_light");
    std::printf("compiled: %zu signals, %zu RTL nodes, %zu behavioral "
                "node(s)\n",
                design->signals.size(), design->num_rtl_nodes(),
                design->num_behaviors());

    // 2. Generate the stuck-at fault universe (per bit of every wire/reg).
    const auto faults = fault::generate_faults(*design, {});
    std::printf("fault list: %zu stuck-at faults\n", faults.size());

    // 3. Describe the testbench: reset, then seeded random inputs.
    suite::RandomStimulus::Config cfg;
    cfg.reset = "rst";
    cfg.cycles = 500;
    cfg.seed = 2025;

    // 4. Run the Eraser campaign (explicit + implicit redundancy
    //    elimination; see core::RedundancyMode for the ablation modes).
    //    num_threads > 1 shards the fault list across a thread pool — the
    //    factory builds one identical stimulus per shard, and the verdicts
    //    are bit-identical to a single-threaded run.
    core::CampaignOptions opts;
    opts.num_threads = 4;
    const auto report = core::run_sharded_campaign(
        *design, faults,
        [&] { return std::make_unique<suite::RandomStimulus>(cfg); }, opts);

    std::printf("\ncoverage: %.2f%% (%u/%u faults detected) in %.3fs "
                "(%u shards on %u threads)\n",
                report.coverage_percent, report.num_detected,
                report.num_faults, report.seconds, report.num_shards,
                report.num_threads);
    std::printf("behavioral executions: %llu candidates, %llu executed, "
                "%llu skipped explicit, %llu skipped implicit\n",
                static_cast<unsigned long long>(report.stats.bn_candidates),
                static_cast<unsigned long long>(report.stats.bn_executed),
                static_cast<unsigned long long>(
                    report.stats.bn_skipped_explicit),
                static_cast<unsigned long long>(
                    report.stats.bn_skipped_implicit));

    // 5. Every undetected fault is a coverage hole worth inspecting.
    std::printf("\nundetected faults:\n");
    for (size_t f = 0; f < faults.size(); ++f) {
        if (!report.detected[f]) {
            std::printf("  %s\n", faults[f].str(*design).c_str());
        }
    }
    return 0;
}
