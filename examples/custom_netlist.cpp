// Building a design through the C++ IR API directly — no Verilog involved.
// Useful when Eraser is embedded in another flow (e.g. a generator emits
// rtl::Design straight from its own IR). Constructs a 4-bit Johnson counter
// with a decoded one-hot output, runs good simulation on both engine
// flavours, then a fault campaign.
//
//   $ ./build/examples/custom_netlist
#include <cstdio>

#include "eraser/eraser.h"
#include "suite/random_stimulus.h"

int main() {
    using namespace eraser;
    using rtl::Op;

    rtl::Design design;
    design.top_name = "johnson";

    // Ports and nets.
    const auto clk = design.add_signal("clk", 1, rtl::SignalKind::Wire,
                                       /*is_input=*/true);
    const auto rst = design.add_signal("rst", 1, rtl::SignalKind::Wire,
                                       /*is_input=*/true);
    const auto q = design.add_signal("q", 4, rtl::SignalKind::Reg,
                                     false, /*is_output=*/true);
    const auto decoded = design.add_signal("decoded", 8, rtl::SignalKind::Wire,
                                           false, /*is_output=*/true);
    const auto feedback = design.add_signal("feedback", 1,
                                            rtl::SignalKind::Wire);
    const auto shifted = design.add_signal("shifted", 4,
                                           rtl::SignalKind::Wire);
    const auto one = design.add_signal("const_one", 8, rtl::SignalKind::Wire);

    // RTL nodes: feedback = ~q[3]; shifted = {q[2:0], feedback};
    // decoded = 1 << q (one-hot-ish decode of the counter value).
    const auto q3 = design.add_signal("q3", 1, rtl::SignalKind::Wire);
    design.add_node(Op::Slice, {q}, q3, Value(0, 1), /*imm=*/3);
    design.add_node(Op::Not, {q3}, feedback);
    const auto q_low = design.add_signal("q_low", 3, rtl::SignalKind::Wire);
    design.add_node(Op::Slice, {q}, q_low, Value(0, 1), /*imm=*/0);
    design.add_node(Op::Concat, {q_low, feedback}, shifted);
    design.add_node(Op::Const, {}, one, Value(1, 8));
    design.add_node(Op::Shl, {one, q}, decoded);

    // Behavioral node: always @(posedge clk) if (rst) q <= 0; else q <= shifted;
    rtl::BehavNode always;
    always.name = "johnson_update";
    always.edges.push_back({clk, rtl::EdgeKind::Pos});
    {
        using rtl::Expr;
        using rtl::Stmt;
        rtl::LValue lhs;
        lhs.sig = q;
        lhs.lo = 0;
        lhs.width = 4;
        auto then_s = Stmt::make_assign(lhs.clone(),
                                        Expr::make_const(Value(0, 4)),
                                        /*nonblocking=*/true);
        auto else_s = Stmt::make_assign(lhs.clone(),
                                        Expr::make_signal(shifted, 4),
                                        /*nonblocking=*/true);
        std::vector<rtl::StmtPtr> body;
        body.push_back(Stmt::make_if(Expr::make_signal(rst, 1),
                                     std::move(then_s), std::move(else_s)));
        always.body = Stmt::make_block(std::move(body));
    }
    design.add_behavior(std::move(always));
    design.finalize();

    std::printf("hand-built design: %zu signals, %zu nodes, rank levels %u\n",
                design.signals.size(), design.nodes.size(),
                design.rank_levels());

    // Good simulation on both engines; they must agree cycle by cycle.
    sim::SimEngine ev(design, sim::SchedulingMode::EventDriven);
    sim::SimEngine lv(design, sim::SchedulingMode::Levelized);
    ev.reset();
    lv.reset();
    ev.poke(rst, 1);
    lv.poke(rst, 1);
    ev.tick(clk);
    lv.tick(clk);
    ev.poke(rst, 0);
    lv.poke(rst, 0);
    std::printf("\ncycle:  q (Johnson)  decoded\n");
    for (int i = 0; i < 8; ++i) {
        ev.tick(clk);
        lv.tick(clk);
        if (ev.peek(q) != lv.peek(q)) {
            std::printf("ENGINE DISAGREEMENT at cycle %d\n", i);
            return 1;
        }
        std::printf("%5d:  %x            %02llx\n", i,
                    static_cast<unsigned>(ev.peek(q).bits()),
                    static_cast<unsigned long long>(ev.peek(decoded).bits()));
    }

    // Fault campaign over the hand-built design.
    const auto faults = fault::generate_faults(design, {});
    suite::RandomStimulus::Config cfg;
    cfg.reset = "rst";
    cfg.cycles = 200;
    suite::RandomStimulus stim(cfg);
    core::Session session(design);
    core::CampaignOptions opts;
    const auto report = session.run(faults, stim, opts);
    std::printf("\nfault campaign: %zu faults, coverage %.1f%%\n",
                faults.size(), report.coverage_percent);
    return 0;
}
