// ISO-26262-flavoured safety verification flow on the APB benchmark: run a
// fault campaign, compute diagnostic coverage, classify residual faults,
// and cross-check the result against the independent serial oracle — the
// workflow the paper's introduction motivates (functional-safety sign-off
// needs high fault coverage, fast).
//
//   $ ./build/examples/safety_verification [benchmark]   (default: apb)
#include <algorithm>
#include <cstdio>
#include <map>

#include "eraser/eraser.h"
#include "suite/suite.h"

int main(int argc, char** argv) {
    using namespace eraser;

    const std::string name = argc > 1 ? argv[1] : "apb";
    const auto& bench = suite::find_benchmark(name);
    auto design = suite::load_design(bench);
    std::printf("design under test: %s (%zu cells, %zu behavioral nodes)\n",
                bench.display.c_str(), design->cell_estimate(),
                design->num_behaviors());

    fault::FaultGenOptions fopts;
    fopts.sample_max = bench.fault_sample;
    fopts.sample_seed = 1;
    const auto faults = fault::generate_faults(*design, fopts);

    // --- the fast engine: Eraser ------------------------------------------
    // One Session serves both the campaign and the serial cross-check
    // below; the design compiles once.
    core::Session session(*design);
    auto stim = suite::make_stimulus(bench, bench.cycles);
    core::CampaignOptions opts;
    const auto report = session.run(faults, *stim, opts);
    std::printf("Eraser campaign: %u cycles, %zu faults -> DC = %.2f%% "
                "in %.3fs\n",
                bench.cycles, faults.size(), report.coverage_percent,
                report.seconds);

    // --- residual-fault report ----------------------------------------------
    // Group undetected faults by signal so the safety engineer sees which
    // structures lack observability.
    std::map<std::string, int> residual_by_signal;
    for (size_t f = 0; f < faults.size(); ++f) {
        if (!report.detected[f]) {
            residual_by_signal[design->signals[faults[f].sig].name]++;
        }
    }
    std::printf("\nresidual (undetected) faults by signal:\n");
    int listed = 0;
    for (const auto& [signal, count] : residual_by_signal) {
        std::printf("  %-32s %d\n", signal.c_str(), count);
        if (++listed >= 15) {
            std::printf("  ... (%zu signals total)\n",
                        residual_by_signal.size());
            break;
        }
    }

    // --- independent confirmation -------------------------------------------
    // A safety case needs an argument that the *tool* is right. Replay the
    // verdicts with the force-and-compare serial simulator.
    auto stim2 = suite::make_stimulus(bench, bench.cycles);
    baseline::SerialOptions sopts;
    const auto oracle =
        run_serial_campaign(session.compiled(), faults, *stim2, sopts);
    const bool agree =
        std::equal(report.detected.begin(), report.detected.end(),
                   oracle.detected.begin());
    std::printf("\nserial oracle: DC = %.2f%% in %.3fs -> verdicts %s "
                "(speedup %.1fx)\n",
                oracle.coverage_percent, oracle.seconds,
                agree ? "MATCH" : "MISMATCH",
                oracle.seconds / report.seconds);

    // --- ISO 26262 metric framing --------------------------------------------
    const double dc = report.coverage_percent;
    const char* verdict = dc >= 99.0 ? "ASIL-D single-point metric range"
                          : dc >= 97.0 ? "ASIL-C single-point metric range"
                          : dc >= 90.0 ? "ASIL-B single-point metric range"
                                       : "below ASIL-B single-point range";
    std::printf("\ndiagnostic coverage %.2f%% -> %s\n", dc, verdict);
    std::printf("(illustrative mapping of the SPFM thresholds; a real safety "
                "case also needs\nlatent-fault metrics and safety-mechanism "
                "partitioning)\n");
    return agree ? 0 : 1;
}
